"""The persistent worker pool computes what the executor computes — faster.

Acceptance tests for :mod:`repro.parallel.pool`: pooled runs must be
bit-identical to ``execute_vectorized``, plans must ship to each worker at
most once, refreshed segments must pick up the arrays' current values
between runs, and the lifecycle (close, broken, context manager) must be
unsurprising.  Worker counts stay at two so the suite is CI-safe.
"""

import numpy as np
import pytest

from repro import zpl
from repro.compiler import compile_scan
from repro.errors import MachineError
from repro.obs import Tracer
from repro.parallel import WorkerPool, execute, shared_pool
from repro.parallel.pool import close_pools
from repro.runtime import execute_vectorized, run_and_capture
from tests.conftest import record_tomcatv_block


def _compiled_tomcatv(n=24):
    block, arrays = record_tomcatv_block(n)
    return compile_scan(block), arrays


def _assert_pool_matches_vectorized(pool, compiled, arrays, **kwargs):
    oracle = run_and_capture(execute_vectorized, compiled, arrays)
    runs = []

    def engine(c):
        runs.append(pool.execute(c, **kwargs))

    pooled = run_and_capture(engine, compiled, arrays)
    for array, want, got in zip(arrays, oracle, pooled):
        np.testing.assert_array_equal(
            got, want, err_msg=f"array {array.name} diverged under {kwargs}"
        )
    return runs[0]


def test_pooled_pipelined_identical():
    compiled, arrays = _compiled_tomcatv()
    with WorkerPool(2) as pool:
        run = _assert_pool_matches_vectorized(
            pool, compiled, arrays, block=4
        )
        assert run.n_procs == 2
        assert run.block_size == 4
        assert run.n_chunks > 1
        assert len(run.worker_times) == 2


def test_pooled_naive_identical():
    compiled, arrays = _compiled_tomcatv()
    with WorkerPool(2) as pool:
        run = _assert_pool_matches_vectorized(
            pool, compiled, arrays, schedule="naive"
        )
        assert run.schedule == "naive"
        assert run.n_chunks == 1


def test_pooled_backward_wavefront():
    # A SOUTH-primed scan walks rows bottom-up: exercises the second
    # (descending) token fabric of the same pool.
    n = 16
    base = zpl.Region.square(1, n)
    a = zpl.ZArray(base, name="a")
    a.fill(1.0)
    with zpl.covering(zpl.Region.of((1, n - 1), (1, n))):
        with zpl.scan(execute=False) as block:
            a[...] = 0.5 * (a.p @ zpl.SOUTH) + 0.25
    compiled = compile_scan(block)
    with WorkerPool(2) as pool:
        _assert_pool_matches_vectorized(pool, compiled, arrays=[a], block=4)


def test_reuse_ships_blob_once():
    compiled, arrays = _compiled_tomcatv(16)
    with WorkerPool(2) as pool:
        for _ in range(3):
            _assert_pool_matches_vectorized(pool, compiled, arrays, block=4)
        assert pool.stats["executes"] == 3
        assert pool.stats["plan_misses"] == 1
        assert pool.stats["plan_hits"] == 2
        # one blob per worker, ever
        assert pool.stats["blobs_shipped"] == 2


def test_refresh_sees_current_values():
    # Change the inputs between runs: the reused segments must be refreshed,
    # so the pooled result tracks the sequential engine run-for-run.
    compiled, arrays = _compiled_tomcatv(16)
    rng = np.random.default_rng(17)
    with WorkerPool(2) as pool:
        for _ in range(2):
            _assert_pool_matches_vectorized(pool, compiled, arrays, block=4)
            arrays[0]._data[...] = rng.uniform(
                0.5, 1.5, size=arrays[0]._data.shape
            )


def test_two_plans_cached_independently():
    c1, a1 = _compiled_tomcatv(16)
    c2, a2 = _compiled_tomcatv(20)
    with WorkerPool(2) as pool:
        _assert_pool_matches_vectorized(pool, c1, a1, block=4)
        _assert_pool_matches_vectorized(pool, c2, a2, block=4)
        _assert_pool_matches_vectorized(pool, c1, a1, block=4)
        assert pool.stats["plan_misses"] == 2
        assert pool.stats["plan_hits"] == 1


def test_executor_delegates_to_pool():
    compiled, arrays = _compiled_tomcatv(16)
    oracle = run_and_capture(execute_vectorized, compiled, arrays)
    with WorkerPool(2) as pool:
        def engine(c):
            execute(c, schedule="pipelined", block=4, pool=pool)

        pooled = run_and_capture(engine, compiled, arrays)
        for want, got in zip(oracle, pooled):
            np.testing.assert_array_equal(got, want)
        assert pool.stats["executes"] == 1


def test_executor_rejects_conflicting_grid():
    compiled, _ = _compiled_tomcatv(16)
    with WorkerPool(2) as pool:
        with pytest.raises(MachineError, match="conflicts"):
            execute(compiled, grid=3, pool=pool)


def test_closed_pool_raises():
    compiled, _ = _compiled_tomcatv(16)
    pool = WorkerPool(2)
    pool.close()
    assert pool.closed
    with pytest.raises(MachineError, match="closed"):
        pool.execute(compiled)
    pool.close()  # idempotent


def test_worker_failure_breaks_pool():
    # A shifted read beyond the fluff only explodes inside the workers; the
    # pool must surface it as a MachineError and refuse further runs.
    n = 10
    base = zpl.Region.square(1, n)
    a = zpl.ZArray(base, name="a", fluff=1)
    a.fill(1.0)
    with zpl.covering(zpl.Region.square(4, n - 1)):
        with zpl.scan(execute=False) as block:
            a[...] = 0.5 * (a.p @ (-5, 0)) + 0.1
    compiled = compile_scan(block)
    pool = WorkerPool(2, timeout=30.0)
    try:
        with pytest.raises(MachineError, match="worker"):
            pool.execute(compiled, block=4, timeout=30.0)
        assert pool.broken
        good, _ = _compiled_tomcatv(12)
        with pytest.raises(MachineError, match="broken"):
            pool.execute(good)
    finally:
        pool.close()


def test_pool_reuse_span_recorded():
    compiled, arrays = _compiled_tomcatv(16)
    with WorkerPool(2) as pool:
        pool.execute(compiled, block=4, tracer=Tracer())
        tracer = Tracer()
        run = pool.execute(compiled, block=4, tracer=tracer)
        names = {s.name for s in tracer.spans}
        assert "pool_reuse" in names      # segments refreshed, not recreated
        assert "share" not in names       # nothing was re-shared
        assert "compute" in names         # worker spans rode home
        assert run.trace.meta["pool"] is True
        assert run.trace.counter_total("pool_plan_hits") >= 2  # one per worker
        assert tracer.counters[(-1, "pool_plan_hits")] == 1   # parent-side


def test_shared_pool_caches_and_replaces():
    try:
        p1 = shared_pool(2)
        assert shared_pool(2) is p1
        p1.close()
        p2 = shared_pool(2)
        assert p2 is not p1
        assert not p2.closed
    finally:
        close_pools()
