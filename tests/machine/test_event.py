"""Tests for the discrete-event simulation core."""

import pytest

from repro.errors import DeadlockError, MachineError
from repro.machine.event import Simulator


class TestTimeouts:
    def test_single_timeout(self):
        sim = Simulator()
        trace = []

        def body():
            yield sim.timeout(5.0)
            trace.append(sim.now)

        sim.process(body())
        assert sim.run() == 5.0
        assert trace == [5.0]

    def test_sequential_timeouts_accumulate(self):
        sim = Simulator()

        def body():
            yield sim.timeout(2.0)
            yield sim.timeout(3.5)

        sim.process(body())
        assert sim.run() == pytest.approx(5.5)

    def test_parallel_processes_overlap(self):
        sim = Simulator()

        def body(delay):
            yield sim.timeout(delay)

        sim.process(body(10.0))
        sim.process(body(4.0))
        assert sim.run() == 10.0

    def test_zero_timeout_ok(self):
        sim = Simulator()

        def body():
            yield sim.timeout(0.0)

        sim.process(body())
        assert sim.run() == 0.0

    def test_negative_timeout_rejected(self):
        sim = Simulator()
        with pytest.raises(MachineError):
            sim.timeout(-1.0)

    def test_run_until(self):
        sim = Simulator()

        def body():
            yield sim.timeout(100.0)

        sim.process(body())
        assert sim.run(until=10.0) == 10.0


class TestDeterminism:
    def test_equal_time_events_fire_in_schedule_order(self):
        sim = Simulator()
        trace = []

        def body(label):
            yield sim.timeout(1.0)
            trace.append(label)

        for label in ("a", "b", "c"):
            sim.process(body(label))
        sim.run()
        assert trace == ["a", "b", "c"]

    def test_repeatable(self):
        def run_once():
            sim = Simulator()
            trace = []

            def body(label, delay):
                yield sim.timeout(delay)
                trace.append((label, sim.now))
                yield sim.timeout(delay)
                trace.append((label, sim.now))

            sim.process(body("x", 2.0))
            sim.process(body("y", 3.0))
            sim.run()
            return trace

        assert run_once() == run_once()


class TestStores:
    def test_put_then_get(self):
        sim = Simulator()
        store = sim.store()
        got = []

        def consumer():
            item = yield store.get()
            got.append(item)

        store.put("hello")
        sim.process(consumer())
        sim.run()
        assert got == ["hello"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = sim.store()
        got = []

        def consumer():
            item = yield store.get()
            got.append((item, sim.now))

        def producer():
            yield sim.timeout(7.0)
            store.put(42)

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [(42, 7.0)]

    def test_fifo_order(self):
        sim = Simulator()
        store = sim.store()
        got = []

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        for i in range(3):
            store.put(i)
        sim.process(consumer())
        sim.run()
        assert got == [0, 1, 2]

    def test_waiters_served_fifo(self):
        sim = Simulator()
        store = sim.store()
        got = []

        def consumer(label):
            item = yield store.get()
            got.append((label, item))

        def producer():
            yield sim.timeout(1.0)
            store.put("first")
            yield sim.timeout(1.0)
            store.put("second")

        sim.process(consumer("a"))
        sim.process(consumer("b"))
        sim.process(producer())
        sim.run()
        assert got == [("a", "first"), ("b", "second")]

    def test_len(self):
        sim = Simulator()
        store = sim.store()
        store.put(1)
        store.put(2)
        assert len(store) == 2


class TestProcesses:
    def test_deadlock_detected(self):
        sim = Simulator()
        store = sim.store()

        def consumer():
            yield store.get()  # never satisfied

        sim.process(consumer(), name="starved")
        with pytest.raises(DeadlockError, match="starved"):
            sim.run()

    def test_process_completion_event(self):
        sim = Simulator()
        trace = []

        def worker():
            yield sim.timeout(3.0)

        def waiter(proc):
            yield proc
            trace.append(sim.now)

        proc = sim.process(worker())
        sim.process(waiter(proc))
        sim.run()
        assert trace == [3.0]

    def test_bad_yield_rejected(self):
        sim = Simulator()

        def body():
            yield "not an event"

        sim.process(body())
        with pytest.raises(MachineError, match="yielded"):
            sim.run()

    def test_finished(self):
        sim = Simulator()

        def body():
            yield sim.timeout(1.0)

        sim.process(body(), name="p0")
        sim.run()
        assert [p.name for p in sim.finished()] == ["p0"]
