"""Region scoping and statement execution/recording.

This module provides the dynamic context that makes the ``[R] stmt`` syntax of
ZPL work in Python:

* :func:`covering` — a ``with`` block establishing the ambient region, the
  analog of prefixing statements with ``[R]``;
* :func:`scan` — a ``with`` block that *records* the statements written inside
  it into a :class:`~repro.zpl.scan.ScanBlock`, compiles it on exit and (by
  default) executes it with the sequential vectorised engine;
* :func:`statement` — the entry point used by ``ZArray.__setitem__``.

Outside a scan block, statements execute eagerly with ordinary array-language
semantics: the right-hand side is fully evaluated before the assignment, so a
statement can never carry a non-lexically-forward true dependence (paper
Fig. 3(a-c)).  The prime operator is rejected outside scan blocks.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterator

import numpy as np

from repro.errors import ExpressionError, RegionError
from repro.zpl.arrays import ZArray
from repro.zpl.expr import Node
from repro.zpl.regions import Region
from repro.zpl.scan import ScanBlock
from repro.zpl.statements import Assign


class _Scope(threading.local):
    """Per-thread ambient state: region/mask stacks and scan recorder."""

    def __init__(self) -> None:
        self.regions: list[Region] = []
        self.masks: list[ZArray] = []
        self.recorder: ScanBlock | None = None


_SCOPE = _Scope()

#: Engine used to execute scan blocks recorded by :func:`scan`.
#: Signature: ``engine(compiled_scan) -> None`` (mutates the target arrays).
_DEFAULT_ENGINE: Callable | None = None


def current_region() -> Region | None:
    """The innermost ambient covering region, or None."""
    return _SCOPE.regions[-1] if _SCOPE.regions else None


def current_mask() -> ZArray | None:
    """The innermost ambient mask, or None."""
    return _SCOPE.masks[-1] if _SCOPE.masks else None


@contextmanager
def masked(mask: ZArray) -> Iterator[ZArray]:
    """ZPL's ``[R with m]``: statements store only where ``mask`` is nonzero.

    Reads are unaffected; the innermost mask wins when nested.
    """
    if not isinstance(mask, ZArray):
        raise RegionError(f"masked() needs a ZArray, got {mask!r}")
    _SCOPE.masks.append(mask)
    try:
        yield mask
    finally:
        _SCOPE.masks.pop()


@contextmanager
def covering(region: Region) -> Iterator[Region]:
    """Establish ``region`` as the ambient covering region (ZPL's ``[R]``)."""
    if not isinstance(region, Region):
        raise RegionError(f"covering() needs a Region, got {region!r}")
    _SCOPE.regions.append(region)
    try:
        yield region
    finally:
        _SCOPE.regions.pop()


def set_default_engine(engine: Callable | None) -> None:
    """Install the engine ``scan()`` uses to execute compiled blocks.

    ``None`` restores the built-in sequential vectorised engine.
    """
    global _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine


def _builtin_engine() -> Callable:
    from repro.runtime.vectorized import execute_vectorized

    return execute_vectorized


@contextmanager
def scan(
    name: str | None = None,
    execute: bool = True,
    engine: Callable | None = None,
) -> Iterator[ScanBlock]:
    """Record the statements of a wavefront computation.

    On normal exit the block is compiled (all legality checks run) and, when
    ``execute`` is true, evaluated by ``engine`` (default: the sequential
    vectorised engine, or whatever :func:`set_default_engine` installed).

    With ``execute=False`` the block is only recorded — compile and run it
    yourself; this is how the distributed executor and the compiler tests
    consume scan blocks.
    """
    if _SCOPE.recorder is not None:
        raise ExpressionError("scan blocks may not be nested")
    block = ScanBlock(name=name)
    _SCOPE.recorder = block
    try:
        yield block
    finally:
        _SCOPE.recorder = None
    if execute:
        compiled = block.compile()
        run = engine or _DEFAULT_ENGINE or _builtin_engine()
        run(compiled)


def eager_reader(array: ZArray, region: Region, primed: bool) -> np.ndarray:
    """Region reader for eager (non-scan) evaluation; rejects the prime op."""
    if primed:
        raise ExpressionError(
            "the prime operator is only meaningful inside a scan block"
        )
    return array.read(region)


def statement(target: ZArray, expr: Node, region: Region | None) -> None:
    """Execute or record one array assignment statement.

    Called by ``ZArray.__setitem__``.  ``region=None`` means "use the ambient
    covering region".
    """
    resolved = region if region is not None else current_region()
    if resolved is None:
        raise RegionError(
            "no covering region: use a[R] = expr or wrap the statement in "
            "'with covering(R):'"
        )
    stmt = Assign(target, expr, resolved, mask=current_mask())
    if _SCOPE.recorder is not None:
        _SCOPE.recorder.append(stmt)
        return
    execute_eager(stmt)


def execute_eager(stmt: Assign) -> None:
    """Run one statement with array semantics (RHS fully evaluated first),
    honouring its mask.  Shared by ambient statements and parsed programs."""
    values = stmt.expr.evaluate(stmt.region, eager_reader)
    if isinstance(values, np.ndarray) and np.shares_memory(
        values, stmt.target._data
    ):
        values = values.copy()
    if stmt.mask is not None:
        keep = stmt.mask.read(stmt.region) != 0
        values = np.where(keep, values, stmt.target.read(stmt.region))
    stmt.target.write(stmt.region, values)
