#!/usr/bin/env python
"""Block-size tuning across machines and kernels (the paper's future work).

The conclusion promises to "investigate ... properties such as dynamism of
optimal block size".  This example sweeps the wavefront-kernel suite across
the machine presets, comparing Model2's predicted optimum against the
simulated machine's measured optimum, and shows how b* moves with α, β,
n and p — the sensitivities of the paper's Equation (1).

Run:  python examples/block_size_tuning.py
"""

from repro.apps import suite
from repro.machine import PRESETS, pipelined_wavefront
from repro.models import model2

N = 129
P = 8

print(f"Optimal block size by kernel and machine (n={N}, p={P}):")
print(f"  {'kernel':>18s} {'machine':>16s} {'model b*':>9s} {'sim b*':>7s}")
for entry in suite.SUITE:
    compiled = entry.build(N)
    from repro.machine import plan_wavefront

    plan = plan_wavefront(compiled)
    rows = compiled.region.extent(plan.wavefront_dim)
    cols = (
        compiled.region.extent(plan.chunk_dim)
        if plan.chunk_dim is not None
        else 1
    )
    for key, params in PRESETS.items():
        predicted = model2(
            params, rows, P, boundary_rows=max(1, plan.boundary_rows), cols=cols
        ).optimal_block_size()
        candidates = sorted({1, 2, 4, 8, 12, 16, 24, 32, 48, 64, predicted})
        times = {}
        for b in candidates:
            if b > cols:
                continue
            times[b] = pipelined_wavefront(
                compiled, params, n_procs=P, block_size=b, compute_values=False
            ).total_time
        measured = min(times, key=times.get)
        print(f"  {entry.name:>18s} {params.name:>16.16s} {predicted:9d} {measured:7d}")

print("\nSensitivity of b* (single-stream kernel, Cray T3E base):")
from repro.machine import CRAY_T3E, MachineParams

base = dict(alpha=CRAY_T3E.alpha, beta=CRAY_T3E.beta)
rows = cols = 255


def bstar(alpha: float, beta: float, n: int = rows, p: int = P) -> int:
    return model2(
        MachineParams(name="sweep", alpha=alpha, beta=beta), n, p, cols=n
    ).optimal_block_size()


print(f"  alpha x4:  b* {bstar(**base)} -> {bstar(base['alpha'] * 4, base['beta'])}"
      "  (larger startup => bigger blocks)")
print(f"  beta  x8:  b* {bstar(**base)} -> {bstar(base['alpha'], base['beta'] * 8)}"
      "  (pricier words => smaller blocks)")
print(f"  p 4 -> 32: b* {bstar(base['alpha'], base['beta'], p=4)} -> "
      f"{bstar(base['alpha'], base['beta'], p=32)}"
      "  (more processors to keep busy => smaller blocks)")
print(f"  n 255 -> 2047: b* {bstar(**base)} -> "
      f"{bstar(base['alpha'], base['beta'], n=2047)}"
      "  (bigger problems => less sensitivity)")
