"""The statically checked legality conditions of scan blocks (Section 2.2).

The paper lists five checks; they map onto this module as follows.

(i)   Primed arrays in a scan block must also be defined in the block
      (code ``E001``, :class:`UndefinedPrimeError`).
(ii)  The directions on primed references may not over-constrain the
      wavefront — checked constructively by the loop-structure search
      (code ``E002``, :class:`OverconstrainedScanError` from
      :func:`repro.compiler.loopstruct.derive_loop_structure`).
(iii) All statements in a scan block must have the same rank
      (code ``E003``, :class:`RankMismatchError`).
(iv)  All statements must be covered by the same region
      (code ``E004``, :class:`RegionMismatchError`).
(v)   Parallel operators' operands (other than shift) may not be primed
      (code ``E005``, :class:`ParallelPrimeError`) — essential because the
      compiler pulls those operators out of the scan block.

Three additional checks follow from the implementation strategy and are
documented here rather than in the paper: a primed reference must carry a
nonzero shift (``E006`` — an unshifted prime would name a value written
*later in the same iteration*), a scan block may not write its own mask
(``E007``), and a hoisted parallel operator may not read an array the block
writes (``E008`` — hoisting would then change its value).  ``E009`` rejects
empty blocks.

Every check exists in two forms.  :func:`legality_diagnostics` collects
*all* violations as :class:`~repro.analyze.diagnostics.Diagnostic` objects
(with source spans when the block came from the textual parser) and never
raises — this is what ``python -m repro.analyze lint`` runs.
:func:`check_scan_block` keeps the historical contract: it raises the
exception for the *first* violation, with the structured diagnostic attached
as ``exc.diagnostic``.
"""

from __future__ import annotations

from repro.analyze.diagnostics import Because, Diagnostic
from repro.errors import (
    LegalityError,
    ParallelPrimeError,
    PrimedOperandError,
    RankMismatchError,
    RegionMismatchError,
    UndefinedPrimeError,
)
from repro.zpl.scan import ScanBlock
from repro.zpl.span import span_of

#: Diagnostic code -> the exception :func:`check_scan_block` raises for it.
_EXCEPTIONS: dict[str, type[LegalityError]] = {
    "E001": UndefinedPrimeError,
    "E003": RankMismatchError,
    "E004": RegionMismatchError,
    "E005": ParallelPrimeError,
    "E006": PrimedOperandError,
    "E007": LegalityError,
    "E008": ParallelPrimeError,
    "E009": LegalityError,
}


def legality_diagnostics(block: ScanBlock) -> list[Diagnostic]:
    """Every statically detectable legality violation, as diagnostics.

    Collects in check order (the first entry is what
    :func:`check_scan_block` raises); never executes the block and never
    raises.  Condition (ii) is *not* covered here — it needs the dependence
    extractor and loop-structure search (see
    :func:`repro.compiler.loopstruct.derive_loop_structure` and the
    ``overconstrained`` lint pass).
    """
    diagnostics: list[Diagnostic] = []

    if len(block) == 0:
        diagnostics.append(
            Diagnostic(
                "E009",
                "scan block contains no statements",
                hint="add at least one assignment, or delete the block",
            )
        )
        return diagnostics

    first = block.statements[0]
    for j, stmt in enumerate(block.statements):
        if stmt.rank != first.rank:  # condition (iii)
            diagnostics.append(
                Diagnostic(
                    "E003",
                    f"statement {j} has rank {stmt.rank}, statement 0 has "
                    f"rank {first.rank}: all statements in a scan block must "
                    f"be implemented by a loop nest of the same depth",
                    span=span_of(stmt),
                    because=(
                        Because(
                            "note",
                            f"statement 0 covers {first.region!r} "
                            f"(rank {first.rank})",
                        ),
                        Because(
                            "note",
                            f"statement {j} covers {stmt.region!r} "
                            f"(rank {stmt.rank})",
                        ),
                    ),
                    hint="split the block into one scan block per rank",
                    data={"statement": j},
                )
            )
        elif stmt.region != first.region:  # condition (iv)
            diagnostics.append(
                Diagnostic(
                    "E004",
                    f"statement {j} is covered by {stmt.region!r}, "
                    f"statement 0 by {first.region!r}: all statements in a "
                    f"scan block must be covered by the same region",
                    span=span_of(stmt),
                    because=(
                        Because(
                            "note",
                            f"a scan block compiles to one loop nest over "
                            f"one region",
                        ),
                    ),
                    hint="use one covering region for the whole block, or "
                    "split it into per-region blocks",
                    data={"statement": j},
                )
            )

    written = {id(a) for a in block.written_arrays()}
    written_names = sorted(
        a.name or "<array>" for a in block.written_arrays()
    )
    for j, stmt in enumerate(block.statements):
        if stmt.mask is not None and id(stmt.mask) in written:
            diagnostics.append(
                Diagnostic(
                    "E007",
                    f"statement {j}: mask {stmt.mask.name!r} is written by "
                    f"the scan block; masks must be loop-invariant",
                    span=span_of(stmt),
                    because=(
                        Because(
                            "note",
                            f"the wavefront would read partially updated "
                            f"mask values",
                        ),
                    ),
                    hint="compute the mask into a separate array before "
                    "the scan block",
                    data={"statement": j, "mask": stmt.mask.name},
                )
            )
        for ref in stmt.expr.refs():
            if not ref.primed:
                continue
            name = ref.array.name or "<array>"
            if id(ref.array) not in written:  # condition (i)
                diagnostics.append(
                    Diagnostic(
                        "E001",
                        f"statement {j} primes {name!r}, but the scan block "
                        f"never defines it: primed arrays must be assigned "
                        f"in the block",
                        span=span_of(ref) or span_of(stmt),
                        because=(
                            Because(
                                "ref",
                                f"primed reference {ref!r} in statement {j}",
                            ),
                            Because(
                                "note",
                                f"the block defines only: "
                                f"{', '.join(written_names)}",
                            ),
                        ),
                        hint=f"drop the prime to read {name!r}'s old values, "
                        f"or assign {name!r} inside the block",
                        data={"statement": j, "array": name},
                    )
                )
            elif ref.offset.is_zero():
                diagnostics.append(
                    Diagnostic(
                        "E006",
                        f"statement {j} primes {name!r} without a shift: an "
                        f"unshifted primed reference would name a value of "
                        f"the current iteration",
                        span=span_of(ref) or span_of(stmt),
                        because=(
                            Because(
                                "ref",
                                f"primed reference {ref!r} has the zero "
                                f"offset",
                            ),
                        ),
                        hint=f"shift the reference (e.g. {name}'@north) so "
                        f"it names a previously computed value",
                        data={"statement": j, "array": name},
                    )
                )
        for op in stmt.expr.parallel_ops():  # condition (v)
            for ref in op.refs():
                if ref.primed:
                    diagnostics.append(
                        Diagnostic(
                            "E005",
                            f"statement {j}: parallel operator {op!r} has a "
                            f"primed operand; only the shift operator may be "
                            f"primed",
                            span=span_of(ref) or span_of(stmt),
                            because=(
                                Because(
                                    "ref",
                                    f"primed reference {ref!r} inside "
                                    f"{op!r}",
                                ),
                                Because(
                                    "note",
                                    "parallel operators are hoisted out of "
                                    "the block and evaluated once, before "
                                    "any wavefront value exists",
                                ),
                            ),
                            hint="drop the prime, or move the operator's "
                            "result into a temporary computed before the "
                            "block",
                            data={"statement": j},
                        )
                    )
                elif id(ref.array) in written:
                    diagnostics.append(
                        Diagnostic(
                            "E008",
                            f"statement {j}: parallel operator {op!r} reads "
                            f"{ref.array.name!r}, which the scan block "
                            f"writes; it cannot be hoisted out of the block",
                            span=span_of(ref) or span_of(stmt),
                            because=(
                                Because(
                                    "note",
                                    f"hoisting evaluates {op!r} before the "
                                    f"block, but "
                                    f"{ref.array.name or '<array>'!r} "
                                    f"changes during it",
                                ),
                            ),
                            hint="read a copy of the array taken before the "
                            "block, or compute the operator after it",
                            data={
                                "statement": j,
                                "array": ref.array.name,
                            },
                        )
                    )
    return diagnostics


def check_scan_block(block: ScanBlock) -> None:
    """Run every static legality check except over-constraint (see (ii)).

    Raises the matching :class:`~repro.errors.LegalityError` subclass for
    the first violation, with the structured diagnostic attached as
    ``exc.diagnostic``.
    """
    diagnostics = legality_diagnostics(block)
    if not diagnostics:
        return
    first = diagnostics[0]
    exc = _EXCEPTIONS[first.code](first.message)
    exc.diagnostic = first
    raise exc
