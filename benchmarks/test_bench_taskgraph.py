"""Task-graph vs pipelined schedule on a banded wavefront DP at p=4.

The banded recurrence is where dependence-driven execution earns its keep:
a mask keeps only the ``|i - j| <= band`` diagonal alive, yet the pipelined
schedule still *computes* every block (masked stores write the old values
back), while ``schedule="taskgraph"`` prunes the fully-masked tiles out of
the DAG at plan time and steals around the load imbalance the band leaves
behind.  This bench regenerates the acceptance numbers on a persistent
:class:`WorkerPool` with four workers (override the mesh size with
``REPRO_BENCH_TASKGRAPH_N`` — CI's smoke step runs a small n):

* every schedule must leave the arrays **bit-identical** to the sequential
  vectorised engine (equality gate);
* the task-graph schedule must be at least **1.3×** faster than the best
  pipelined wall at p=4 (the acceptance gate; pruning alone predicts ~2×
  at the default band);
* the pruner must skip **exactly** the fully-masked tiles — the executed
  tile count, the report's ``n_pruned``, and an independent mask probe of
  the unpruned tiling must all agree.

The payload is written to ``BENCH_taskgraph.json`` via
:mod:`repro.util.benchjson` and uploaded by CI next to the other
``BENCH_*.json`` artifacts.
"""

import os

import numpy as np

from repro import zpl
from repro.compiler import compile_scan
from repro.compiler.taskdag import derive_taskgraph
from repro.machine.schedules import plan_wavefront
from repro.parallel import WorkerPool, oversubscription
from repro.parallel.executor import _as_grid, _build_distribution
from repro.runtime import execute_vectorized
from repro.runtime.interp import ArraySnapshot
from repro.util.benchjson import read_bench, write_bench
from repro.util.timing import WallTimer

#: Acceptance-criterion mesh (band scales with it).
N = int(os.environ.get("REPRO_BENCH_TASKGRAPH_N", "512"))
BAND = max(8, N // 8)
BLOCK = max(16, N // 32)
PROCS = 4
REPEATS = 3
#: The CI gate: taskgraph must beat the pipelined wall by this factor.
MIN_SPEEDUP = 1.3


def _banded_block(n, band):
    base = zpl.Region.square(1, n)
    a = zpl.ZArray(base, name="a", fluff=2)
    a._data[...] = 0.5
    mask = zpl.ZArray(base, name="m", fluff=2)
    mask._data[...] = 0.0
    mask.load(
        np.fromfunction(
            lambda i, j: (np.abs(i - j) <= band).astype(float), (n, n)
        )
    )
    region = zpl.Region.of((2, n), (1, n))
    with zpl.covering(region), zpl.masked(mask):
        with zpl.scan(execute=False) as block:
            a[...] = 0.2 + 0.45 * (a.p @ (-1, 0)) + 0.3 * (a.p @ (-1, -1))
    return compile_scan(block), a, mask


def _timed(pool, compiled, snap, repeats, **kwargs):
    best_wall = float("inf")
    last_run = None
    for _ in range(repeats):
        snap.restore()
        timer = WallTimer()
        with timer:
            last_run = pool.execute(compiled, **kwargs)
        best_wall = min(best_wall, timer.elapsed)
    return best_wall, last_run


def test_taskgraph_schedule_artifact():
    compiled, a, mask = _banded_block(N, BAND)
    compiled.prepare()
    snap = ArraySnapshot([a, mask])

    # The sequential oracle for the equality gate.
    execute_vectorized(compiled)
    oracle = a.to_numpy().copy()
    snap.restore()

    pool = WorkerPool(PROCS)
    try:
        pipelined_wall, pipelined_run = _timed(
            pool, compiled, snap, REPEATS, schedule="pipelined", block=BLOCK
        )
        np.testing.assert_array_equal(a.to_numpy(), oracle)

        taskgraph_wall, taskgraph_run = _timed(
            pool, compiled, snap, REPEATS, schedule="taskgraph", block=BLOCK
        )
        np.testing.assert_array_equal(a.to_numpy(), oracle)
    finally:
        pool.close()

    # Independent pruning probe: retile without pruning and count the
    # tiles the masks kill; the scheduler must have skipped exactly those.
    report = taskgraph_run.taskgraph
    plan = plan_wavefront(compiled)
    grid = _as_grid(PROCS)
    dist = _build_distribution(plan, grid)
    locals_by_rank = [dist.local_region(rank) for rank in grid]
    oversub = int(os.environ.get("REPRO_TASKGRAPH_OVERSUB", "3"))
    full = derive_taskgraph(
        compiled, plan, locals_by_rank, oversub, BLOCK, prune=False
    )
    dead = sum(
        1 for tile in full.tiles if not np.any(mask.read(tile) != 0)
    )
    assert dead > 0, "the band must leave fully-masked tiles to prune"
    assert report.n_pruned == dead
    assert report.n_tasks == full.n_live - dead
    # Executed-tile counters (the workers' per-rank stats): every live
    # tile ran exactly once, nowhere twice, nothing dead ever fired.
    assert sum(report.tasks_by_rank) == report.n_tasks

    speedup = pipelined_wall / taskgraph_wall
    results = [
        {
            "test": "taskgraph_vs_pipelined",
            "n": N,
            "band": BAND,
            "block_size": BLOCK,
            "p": PROCS,
            "pipelined_seconds": pipelined_wall,
            "taskgraph_seconds": taskgraph_wall,
            "taskgraph_speedup": speedup,
            "n_tasks": report.n_tasks,
            "n_pruned": report.n_pruned,
            "n_edges": report.n_edges,
            "dead_fraction": report.n_pruned / full.n_live,
            "steals": report.steals,
            "ready_peak": report.ready_peak,
            "tasks_by_rank": list(report.tasks_by_rank),
        }
    ]
    meta = {
        "benchmark": "banded-wavefront-dp",
        "n": N,
        "band": BAND,
        "repeats": REPEATS,
        "host": oversubscription(PROCS),
        "pipelined_chunks": pipelined_run.n_chunks,
    }
    path = write_bench("taskgraph", results, meta=meta)

    written = read_bench("taskgraph")
    assert path.name == "BENCH_taskgraph.json"
    assert written["results"][0]["taskgraph_seconds"] > 0

    # Acceptance criterion — the CI gate.
    assert speedup >= MIN_SPEEDUP, (
        f"taskgraph must be >={MIN_SPEEDUP}x faster than pipelined on the "
        f"banded DP at p={PROCS}, n={N}, band={BAND}: taskgraph "
        f"{taskgraph_wall:.4f}s vs pipelined {pipelined_wall:.4f}s "
        f"({speedup:.2f}x)"
    )
