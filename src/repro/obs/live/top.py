"""``python -m repro.obs top`` — a live terminal view of a running server.

Polls the JSON ``/metrics`` endpoint of a :mod:`repro.serve` instance and
renders a compact dashboard: request throughput and latency quantiles,
queue depth, batch shape, per-worker utilization (from the busy-seconds
counters the pool flushes), and the model monitor's drift status.

The renderer (:func:`render_top`) is a pure function of two snapshots —
current and previous (for rate/utilization deltas) — so tests exercise it
without a server; :func:`run_top` owns the fetch/clear/sleep loop.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request

#: ANSI "clear screen, cursor home" prefix used between refreshes.
CLEAR = "\x1b[2J\x1b[H"


def fetch_metrics(url: str, timeout: float = 2.0) -> dict:
    """GET the JSON ``/metrics`` document of a running server."""
    if not url.rstrip("/").endswith("/metrics"):
        url = url.rstrip("/") + "/metrics"
    request = urllib.request.Request(url, headers={"Accept": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read().decode())


def _bar(fraction: float, width: int = 20) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def render_top(
    doc: dict, prev: dict | None = None, interval: float | None = None
) -> str:
    """Render one dashboard frame from a ``/metrics`` JSON document.

    ``prev``/``interval`` enable rate readouts (requests/s since the last
    frame, per-worker utilization as busy-seconds delta over wall delta);
    without them the cumulative numbers are shown alone.
    """
    lines: list[str] = []
    requests = doc.get("requests", {})
    latency = doc.get("latency_ms", {})
    queue = doc.get("queue", {})
    batches = doc.get("batches", {})

    uptime = doc.get("uptime_seconds", 0.0)
    completed = requests.get("completed", 0)
    rate = doc.get("throughput_rps", 0.0)
    if prev is not None and interval:
        rate = (completed - prev.get("requests", {}).get("completed", 0)) / interval
    lines.append(
        f"repro.serve up {uptime:8.1f}s   "
        f"req {completed} ok / {requests.get('rejected', 0)} shed / "
        f"{requests.get('failed', 0) + requests.get('timeouts', 0)} err   "
        f"{rate:7.1f} req/s"
    )
    lines.append(
        f"latency ms  p50 {latency.get('p50', 0.0):8.2f}   "
        f"p95 {latency.get('p95', 0.0):8.2f}   "
        f"p99 {latency.get('p99', 0.0):8.2f}"
    )
    depth = queue.get("depth", 0)
    peak = max(1, queue.get("peak", 0))
    lines.append(
        f"queue       {depth:4d} [{_bar(depth / peak)}] peak {queue.get('peak', 0)}"
    )
    hist = batches.get("histogram", {})
    hist_text = " ".join(f"{k}x{v}" for k, v in sorted(
        hist.items(), key=lambda kv: int(kv[0])
    )) or "-"
    lines.append(
        f"batches     {batches.get('dispatched', 0)} dispatched, "
        f"mean size {batches.get('mean_size', 0.0):.2f}   sizes: {hist_text}"
    )

    workers = doc.get("workers", {})
    if workers:
        lines.append("")
        lines.append(
            f"{'rank':>4}  {'busy s':>9}  {'blocks':>8}  {'elements':>12}  "
            f"{'steals':>7}  util"
        )
        prev_workers = (prev or {}).get("workers", {})
        for rank in sorted(workers, key=lambda r: int(r)):
            row = workers[rank]
            busy = row.get("busy_seconds", 0.0)
            util_text = "   --"
            if prev is not None and interval:
                prev_busy = prev_workers.get(rank, {}).get("busy_seconds", 0.0)
                util = (busy - prev_busy) / interval
                util_text = f"{util * 100:4.0f}% [{_bar(util, 10)}]"
            # Steals only exist under schedule="taskgraph"; pipelined rows
            # show a dash rather than a misleading zero.
            steals = row.get("steals_total")
            steals_text = f"{steals:7.0f}" if steals is not None else f"{'--':>7}"
            lines.append(
                f"{rank:>4}  {busy:9.3f}  {row.get('blocks_total', 0):8.0f}  "
                f"{row.get('elements_total', 0):12.0f}  {steals_text}  "
                f"{util_text}"
            )

    model = doc.get("model", {})
    if model:
        status = "DRIFT" if model.get("drift") else "ok"
        lines.append("")
        lines.append(
            f"model       alpha {model.get('alpha_seconds', 0.0) * 1e6:8.2f} us  "
            f"beta {model.get('beta_seconds_per_element', 0.0) * 1e9:8.2f} ns/elt  "
            f"unit {model.get('unit_seconds', 0.0) * 1e9:8.2f} ns/elt"
        )
        lines.append(
            f"drift       [{status}]  ratio {model.get('ratio', 1.0):.3f}  "
            f"({model.get('samples', 0)} jobs, "
            f"{model.get('drift_events', 0)} transitions)"
        )
    fabric = doc.get("fabric", {})
    if fabric:
        lines.append(
            f"fabric      multicast: "
            f"{fabric.get('multicast_releases', 0):.0f} releases, "
            f"{fabric.get('buffer_flips', 0):.0f} buffer flips, "
            f"{fabric.get('overlap_seconds', 0.0) * 1e3:.1f} ms overlapped"
        )
    flight = doc.get("flight", {})
    if flight:
        lines.append(
            f"flight      {'on ' if flight.get('enabled') else 'off'}  "
            f"{flight.get('written', 0)} events, "
            f"{flight.get('dropped', 0)} overwritten"
        )
    return "\n".join(lines)


def run_top(
    url: str,
    interval: float = 1.0,
    iterations: int | None = None,
    out=None,
    clear: bool = True,
) -> int:
    """The polling loop behind ``python -m repro.obs top``."""
    out = sys.stdout if out is None else out
    prev = None
    frames = 0
    while iterations is None or frames < iterations:
        try:
            doc = fetch_metrics(url)
        except (urllib.error.URLError, OSError, ValueError) as exc:
            print(f"error: cannot fetch {url}: {exc}", file=sys.stderr)
            return 1
        frame = render_top(doc, prev, interval if frames else None)
        if clear and frames:
            out.write(CLEAR)
        out.write(frame + "\n")
        out.flush()
        prev = doc
        frames += 1
        if iterations is not None and frames >= iterations:
            break
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            break
    return 0
