#!/usr/bin/env python
"""A SWEEP3D-style discrete-ordinates sweep: eight 3-D wavefronts per iteration.

The paper's motivating application.  Each octant's sweep is one scan block
with three primed directions; the compiler derives a different legal loop
nest per octant (ascending/descending per axis).  The example runs two
source iterations sequentially, then pipelines one octant on the simulated
machine and verifies the distributed values match.

Run:  python examples/transport_sweep.py
"""

import numpy as np

from repro.apps import sweep3d
from repro.machine import SGI_POWERCHALLENGE, pipelined_wavefront
from repro.runtime import execute_vectorized, run_and_capture

n = 12
state = sweep3d.build(n)

print(f"Discrete-ordinates transport, {n}^3 grid, 8 octants per iteration")
for it in range(1, 3):
    total = sweep3d.source_iteration(state)
    print(f"  source iteration {it}: total flux {total:.4f}")

print("\nPer-octant loop structures (one wavefront per octant):")
for octant in sweep3d.OCTANTS:
    compiled = sweep3d.compile_octant(state, octant)
    print(f"  octant {str(octant):>12s}: {compiled.loops!r}")

# Pipeline one octant across 4 processors and check the values agree with
# the sequential engine.
octant = (1, 1, 1)
state.phi.fill(0.0)
compiled = sweep3d.compile_octant(state, octant)
expected = run_and_capture(execute_vectorized, compiled, [state.phi])

state.phi.fill(0.0)
outcome = pipelined_wavefront(
    compiled, SGI_POWERCHALLENGE, n_procs=4, block_size=3
)
match = np.allclose(state.phi._data, expected[0], rtol=1e-12)
print(f"\nPipelined octant {octant} on 4 simulated processors:")
print(f"  virtual time {outcome.total_time:.0f} element-units, "
      f"{outcome.run.total_messages} messages")
print(f"  distributed values match sequential: {match}")
