"""Fig. 7: speedup of pipelined over non-pipelined parallel codes.

The paper's parallel experiment: Tomcatv and SIMPLE with all arrays
distributed across the wavefront dimension, on the Cray T3E and the SGI
PowerChallenge, at several processor counts.  Grey bars: the wavefront
computations alone, whose non-pipelined baseline is serialised across the
processors — their speedup should approach p.  Black bars: the whole
program, whose baseline already runs every parallel phase at full speed —
improvements reach ~3x for Tomcatv and stay in the 5-8%+ range at the low
end for SIMPLE.

Regeneration: every wavefront phase of each benchmark runs on the
discrete-event machine under both the naive (Fig. 4(a)) and the pipelined
(Fig. 4(b)) schedule, at the Model2-optimal block size for that phase's
compute weight; whole-program times compose the phase times (parallel
phases: work/p plus one halo exchange; serial phases: unscaled).

The paper does not state Fig. 7's problem size; ``n = 1025`` (a typical
large mesh of the era) makes the communication/computation ratio match the
reported behaviour — with the Fig. 5(a) problem size the T3E's huge α would
cap the wavefront speedup well below p, which is exactly the efficiency
decay the paper describes for growing p.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable

from repro.apps import simple, tomcatv
from repro.compiler.lowering import CompiledScan
from repro.experiments.common import PAPER_MACHINES, PAPER_PROCS, heading
from repro.machine.params import MachineParams
from repro.machine.schedules import (
    naive_wavefront,
    pipelined_wavefront,
    plan_wavefront,
)
from repro.models.amdahl import PhaseKind, ProgramProfile
from repro.models.pipeline_model import model2
from repro.util.tables import format_bar_chart

DESCRIPTION = "Fig. 7: pipelined vs non-pipelined parallel speedup, Tomcatv & SIMPLE"


@dataclass(frozen=True)
class PhaseTimes:
    """Naive and pipelined times of one wavefront phase at one (machine, p)."""

    phase: str
    naive: float
    pipelined: float
    block_size: int

    @property
    def speedup(self) -> float:
        return self.naive / self.pipelined


@dataclass(frozen=True)
class BenchmarkPipelineResult:
    benchmark: str
    machine: MachineParams
    procs: int
    wavefronts: tuple[PhaseTimes, ...]
    whole_nonpipelined: float
    whole_pipelined: float

    @property
    def whole_speedup(self) -> float:
        return self.whole_nonpipelined / self.whole_pipelined


@dataclass(frozen=True)
class Fig7Result:
    n: int
    results: tuple[BenchmarkPipelineResult, ...]

    def report(self) -> str:
        sections = [
            heading(f"Fig. 7 — pipelined vs non-pipelined speedup (n={self.n})")
        ]
        by_machine: dict[str, list[BenchmarkPipelineResult]] = {}
        for r in self.results:
            by_machine.setdefault(r.machine.name, []).append(r)
        for machine_name, rows in by_machine.items():
            bars = []
            for r in rows:
                for w in r.wavefronts:
                    bars.append(
                        (f"{r.benchmark} p={r.procs} {w.phase} (grey)", w.speedup)
                    )
                bars.append(
                    (f"{r.benchmark} p={r.procs} whole (black)", r.whole_speedup)
                )
            sections.append(format_bar_chart(machine_name, bars))
            sections.append("")
        return "\n".join(sections)

    def lookup(
        self, benchmark: str, machine_name: str, procs: int
    ) -> BenchmarkPipelineResult:
        for r in self.results:
            if (
                r.benchmark == benchmark
                and r.machine.name == machine_name
                and r.procs == procs
            ):
                return r
        raise KeyError((benchmark, machine_name, procs))


def _scaled_optimal_b(
    compiled: CompiledScan, params: MachineParams, p: int, work: float
) -> int:
    """Model2's best block size when each element costs ``work`` units."""
    plan = plan_wavefront(compiled)
    rows = compiled.region.extent(plan.wavefront_dim)
    cols = (
        compiled.region.extent(plan.chunk_dim)
        if plan.chunk_dim is not None
        else 1
    )
    scaled = dataclasses.replace(
        params, alpha=params.alpha / work, beta=params.beta / work
    )
    return model2(
        scaled, rows, p, boundary_rows=max(1, plan.boundary_rows), cols=cols
    ).optimal_block_size()


def _wavefront_phase_times(
    compiled: CompiledScan,
    params: MachineParams,
    p: int,
    phase_name: str,
    work: float,
) -> PhaseTimes:
    b = _scaled_optimal_b(compiled, params, p, work)
    naive = naive_wavefront(
        compiled, params, n_procs=p, compute_values=False, work_per_element=work
    ).total_time
    piped = pipelined_wavefront(
        compiled, params, n_procs=p, block_size=b,
        compute_values=False, work_per_element=work,
    ).total_time
    return PhaseTimes(phase_name, naive, piped, b)


#: benchmark name -> (profile builder, wavefront fragments builder).
#: The fragments builder returns phase-name -> compiled scan, with per-element
#: work equal to the profile weight of that phase.
FragmentMap = Callable[[int], dict[str, tuple[CompiledScan, float]]]


def _tomcatv_fragments(n: int) -> dict[str, tuple[CompiledScan, float]]:
    state = tomcatv.build(n)
    interior = state.interior.size
    prof = tomcatv.profile(n)
    weights = {ph.name: ph.work / interior for ph in prof.phases}
    return {
        "forward-solve": (tomcatv.compile_forward(state), weights["forward-solve"]),
        "backward-solve": (tomcatv.compile_backward(state), weights["backward-solve"]),
    }


def _simple_fragments(n: int) -> dict[str, tuple[CompiledScan, float]]:
    state = simple.build(n)
    ns_f, _, we_f, _ = simple.compile_sweeps(state)
    interior = state.interior.size
    prof = simple.profile(n)
    weights = {ph.name: ph.work / interior for ph in prof.phases}
    return {
        "conduction-ns": (ns_f, weights["conduction-ns"]),
        "conduction-we": (we_f, weights["conduction-we"]),
    }


BENCHMARKS: tuple[tuple[str, Callable[[int], ProgramProfile], FragmentMap], ...] = (
    ("tomcatv", tomcatv.profile, _tomcatv_fragments),
    ("simple", simple.profile, _simple_fragments),
)


def run(
    n: int = 1025,
    procs: tuple[int, ...] = PAPER_PROCS,
    machines: tuple[MachineParams, ...] = PAPER_MACHINES,
    quick: bool = False,
) -> Fig7Result:
    """Regenerate the figure for both benchmarks on both machines."""
    if quick:
        n = min(n, 129)
        procs = tuple(p for p in procs if p <= 8)
    results = []
    for benchmark, profile_fn, fragments_fn in BENCHMARKS:
        profile = profile_fn(n)
        fragments = fragments_fn(n)
        width = int(round(profile.total_work() ** 0.5))  # halo-size scale
        for machine in machines:
            for p in procs:
                wave_times = tuple(
                    _wavefront_phase_times(compiled, machine, p, name, work)
                    for name, (compiled, work) in fragments.items()
                )
                by_phase = {w.phase: w for w in wave_times}
                halo = 2.0 * machine.message_cost(n)

                def nonpipelined(phase) -> float:
                    if phase.kind is PhaseKind.WAVEFRONT:
                        return by_phase[phase.name].naive
                    if phase.kind is PhaseKind.SERIAL:
                        return phase.work
                    return phase.work / p + halo

                def pipelined(phase) -> float:
                    if phase.kind is PhaseKind.WAVEFRONT:
                        return by_phase[phase.name].pipelined
                    if phase.kind is PhaseKind.SERIAL:
                        return phase.work
                    return phase.work / p + halo

                results.append(
                    BenchmarkPipelineResult(
                        benchmark=benchmark,
                        machine=machine,
                        procs=p,
                        wavefronts=wave_times,
                        whole_nonpipelined=profile.compose(nonpipelined),
                        whole_pipelined=profile.compose(pipelined),
                    )
                )
    return Fig7Result(n=n, results=tuple(results))
