"""Tests for the ZPL pretty-printer."""

import pytest

from repro import zpl
from repro.zpl.pretty import (
    format_direction,
    format_expr,
    format_region,
    format_scan_block,
    format_statement,
)
from repro.zpl.statements import Assign
from tests.conftest import record_tomcatv_block


class TestDirections:
    def test_cardinals_named(self):
        assert format_direction(zpl.NORTH) == "north"
        assert format_direction(zpl.as_direction((-1, 0))) == "north"
        assert format_direction(zpl.SOUTHEAST) == "southeast"

    def test_vector_fallback(self):
        assert format_direction(zpl.as_direction((2, -1))) == "(2,-1)"


class TestRegions:
    def test_paper_form(self):
        assert format_region(zpl.Region.of((2, 10), (2, 11))) == "[2..10,2..11]"

    def test_rank3(self):
        assert format_region(zpl.Region.square(1, 4, rank=3)) == "[1..4,1..4,1..4]"


class TestExpressions:
    @pytest.fixture
    def arrays(self):
        base = zpl.Region.square(1, 6)
        return zpl.ones(base, name="a"), zpl.ones(base, name="b")

    def test_primed_shift(self, arrays):
        a, _ = arrays
        assert format_expr(a.p @ zpl.NORTH) == "a'@north"

    def test_unprimed_shift(self, arrays):
        a, _ = arrays
        assert format_expr(a @ zpl.EAST) == "a@east"

    def test_precedence_minimal_parens(self, arrays):
        a, b = arrays
        text = format_expr(1.0 / (b - (a @ zpl.NORTH) * a.ref))
        assert text == "1 / (b - a@north * a)"

    def test_constants(self):
        assert format_expr(zpl.Const(2.5)) == "2.5"
        assert format_expr(zpl.Const(4.0)) == "4"

    def test_maximum(self, arrays):
        a, b = arrays
        assert format_expr(zpl.maximum(a, b)) == "max(a, b)"

    def test_reduction(self, arrays):
        a, _ = arrays
        assert format_expr(zpl.zsum(a)) == "+<< a"
        assert format_expr(zpl.zmax(a, dims=[0])) == "max<<[0] a"

    def test_flood(self, arrays):
        a, _ = arrays
        assert format_expr(zpl.flood(a, dims=[1])) == ">>[1] a"

    def test_unary(self, arrays):
        a, _ = arrays
        assert format_expr(zpl.sqrt(a)) == "sqrt(a)"
        assert format_expr(-a) == "-a"

    def test_where(self, arrays):
        a, b = arrays
        assert format_expr(zpl.where(a, b, 0.0)) == "where(a, b, 0)"


class TestStatementsAndBlocks:
    def test_statement_with_region(self):
        a = zpl.ones(zpl.Region.square(1, 5), name="a")
        stmt = Assign(a, 2.0 * (a @ zpl.NORTH), zpl.Region.of((2, 5), (1, 5)))
        assert format_statement(stmt) == "[2..5,1..5] a := 2 * a@north;"

    def test_tomcatv_matches_fig2b(self):
        block, _ = record_tomcatv_block(12)
        text = format_scan_block(block)
        assert text.splitlines()[0] == "[2..10,2..11] scan"
        assert "r := aa * d'@north;" in text
        assert "d := 1 / (dd - aa@north * r);" in text
        assert "rx := rx - rx'@north * r;" in text
        assert text.rstrip().endswith("end;")

    def test_indentation_consistent(self):
        block, _ = record_tomcatv_block(8)
        lines = format_scan_block(block).splitlines()
        body = lines[1:-1]
        indents = {len(line) - len(line.lstrip()) for line in body}
        assert len(indents) == 1
