"""End-to-end request tracing and live telemetry through the serve stack.

The acceptance path for request-context propagation: a ``/v1/align``
request served through a real 2-worker pool must carry one request id
across every layer — ``serve_request`` (event loop), ``serve_batch``
(batcher), ``dispatch`` (pool parent), and the per-block worker
``compute`` spans — and critical-path extraction over those blocks must
return a non-empty chain bounded by the request's wall time.  The same
run feeds ``/metrics`` in both of its content-negotiated forms.
"""

import asyncio

import pytest

from repro.apps.alignment import nw_score_oracle
from repro.obs import Tracer
from repro.obs.live import (
    critical_path,
    path_duration,
    request_slice,
    span_rids,
)
from repro.obs.live.prometheus import CONTENT_TYPE
from repro.serve import ServeApp, ServeConfig

PAIRS = [
    ("GATTACAGATTACAGATTACA", "GCATGCAGCATGCAGCATGCA"),
    ("ACGTACGTACGTACGTACGTA", "TACGTACGTACGTACGTACGT"),
]


@pytest.fixture(scope="module")
def served():
    """Serve two concurrent nw requests through a pooled backend once."""

    async def scenario():
        tracer = Tracer()
        app = ServeApp(ServeConfig(
            window=0.02, batch_max=8, max_queue=32, timeout=90.0,
            grid=2, tracer=tracer,
        ))
        app.batcher.start()
        try:
            responses = await asyncio.gather(*(
                app.handle("POST", "/v1/align",
                           {"kind": "nw", "a": a, "b": b})
                for a, b in PAIRS
            ))
            json_doc = (await app.handle("GET", "/metrics", None))[1]
            prom = await app.handle(
                "GET", "/metrics", None,
                accept="text/plain; version=0.0.4",
            )
        finally:
            await app.batcher.close()
            app.backend.close()
        return responses, app.trace(), json_doc, prom

    return asyncio.run(scenario())


class TestEndToEndTrace:
    def test_requests_served_correctly(self, served):
        responses, _, _, _ = served
        for (status, body, _), (a, b) in zip(responses, PAIRS):
            assert status == 200
            assert body["score"] == pytest.approx(
                nw_score_oracle(a, b, 2.0, -1.0, 1.0)
            )
        ids = {body["id"] for _, body, _ in responses}
        assert len(ids) == len(PAIRS)

    def test_one_id_spans_every_layer(self, served):
        responses, trace, _, _ = served
        rid = responses[0][1]["id"]
        s = request_slice(trace, rid)
        assert s.request is not None
        assert s.request.args["id"] == rid
        assert len(s.batches) >= 1, "id missing from serve_batch spans"
        assert len(s.dispatches) >= 1, "id missing from pool dispatch spans"
        assert len(s.blocks) >= 1, "id missing from per-block worker spans"
        # Every layer carries the id explicitly, not by coincidence.
        for span in [*s.batches, *s.dispatches, *s.blocks]:
            assert rid in span_rids(span)
        # Worker blocks ran in the worker processes, not the driver.
        assert {b.proc for b in s.blocks} <= {0, 1}

    def test_critical_path_nonempty_and_bounded(self, served):
        responses, trace, _, _ = served
        for _, body, _ in responses:
            rid = body["id"]
            s = request_slice(trace, rid)
            path = critical_path(trace, rid)
            assert path, f"empty critical path for request {rid}"
            assert path_duration(path) > 0.0
            assert path_duration(path) <= s.wall * (1 + 1e-9)
            # The chain ends at the last block to finish.
            assert path[-1].end == max(b.end for b in s.blocks)

    def test_blocks_nest_inside_request_window(self, served):
        responses, trace, _, _ = served
        rid = responses[0][1]["id"]
        s = request_slice(trace, rid)
        for block in s.blocks:
            assert block.start >= s.request.start - 1e-9
            assert block.end <= s.request.end + 1e-9


class TestMetricsEndpoint:
    def test_json_document_carries_live_telemetry(self, served):
        _, _, doc, _ = served
        assert doc["requests"]["completed"] >= len(PAIRS)
        workers = doc["workers"]
        assert set(workers) >= {"0", "1"}
        for rank in ("0", "1"):
            assert workers[rank]["busy_seconds"] > 0.0
            assert workers[rank]["blocks_total"] >= 1
            assert workers[rank]["elements_total"] > 0
        assert doc["model"]["samples"] >= 1
        assert doc["flight"]["written"] > 0
        assert doc["flight"]["capacity"] >= 1

    def test_prometheus_negotiated_exposition(self, served):
        _, _, _, (status, body, headers) = served
        assert status == 200
        assert isinstance(body, str)
        assert dict(headers)["Content-Type"] == CONTENT_TYPE
        for metric in (
            "repro_serve_requests_total",
            "repro_serve_latency_seconds",
            "repro_pool_worker_busy_seconds",
            "repro_model_alpha_seconds",
            "repro_model_beta_seconds_per_element",
            "repro_model_drift ",
            "repro_flight_events_total",
        ):
            assert metric in body, f"{metric} missing from exposition"
        assert "# TYPE repro_serve_requests_total counter" in body
