#!/usr/bin/env python
"""Watching the machine: Gantt timelines and processor-mesh shapes.

Renders the paper's Fig. 4 contrast live from the discrete-event simulator —
the naive schedule's staircase against the pipelined schedule's overlap —
then explores 2-D processor meshes (the figure's 2x2 arrangement) for a
fixed 16-processor budget.

Run:  python examples/machine_timelines.py
"""

from repro.apps import suite
from repro.machine import (
    MachineParams,
    naive_wavefront,
    pipelined_wavefront,
    pipelined_wavefront_mesh,
    render_gantt,
)

machine = MachineParams(name="demo", alpha=60.0, beta=1.0)
compiled = suite.get("single-stream").build(65)

naive = naive_wavefront(
    compiled, machine, n_procs=4, compute_values=False, trace_activity=True
)
piped = pipelined_wavefront(
    compiled, machine, n_procs=4, block_size=16,
    compute_values=False, trace_activity=True,
)

print(render_gantt(naive.run, title="(a) naive wavefront — the staircase"))
print()
print(render_gantt(piped.run, title="(b) pipelined, b=16 — overlapped"))
print(f"\nspeedup due to pipelining: "
      f"{naive.total_time / piped.total_time:.2f}x\n")

# ---------------------------------------------------------------------------
# Mesh shapes: 16 processors arranged (wavefront x chunk).
# ---------------------------------------------------------------------------
big = suite.get("single-stream").build(257)
print("Mesh shapes for a 16-processor budget (n=257, b=16):")
print(f"  {'mesh':>8s} {'time':>10s} {'messages':>9s} {'util':>6s}")
for mesh in ((16, 1), (8, 2), (4, 4), (2, 8)):
    outcome = pipelined_wavefront_mesh(
        big, machine, mesh=mesh, block_size=16, compute_values=False
    )
    print(f"  {str(mesh):>8s} {outcome.total_time:10.0f} "
          f"{outcome.run.total_messages:9d} {outcome.run.utilization:6.0%}")
print("\nFlatter meshes trade pipeline depth for smaller per-chain messages;")
print("the best shape depends on the machine's alpha/beta against the")
print("per-element compute cost (see benchmarks/test_bench_ablation_mesh.py).")
