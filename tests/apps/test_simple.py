"""Tests for the SIMPLE hydrodynamics application."""

import numpy as np
import pytest

from repro import zpl
from repro.apps import simple, tomcatv
from repro.machine import plan_wavefront
from repro.runtime import execute_vectorized


class TestBuild:
    def test_blob_initialisation(self):
        state = simple.build(16)
        rho = state.rho.to_numpy()
        centre = rho[7, 7]
        corner = rho[0, 0]
        assert centre > corner  # dense blob in the middle

    def test_too_small(self):
        with pytest.raises(ValueError):
            simple.build(4)


class TestSweeps:
    def test_ns_sweep_wavefront_dims(self):
        state = simple.build(12)
        simple._setup_conduction(state)
        ns_f, ns_b, we_f, we_b = simple.compile_sweeps(state)
        assert plan_wavefront(ns_f).wavefront_dim == 0
        assert plan_wavefront(ns_b).wavefront_dim == 0
        # The WE sweep travels along the orthogonal (second) dimension.
        assert plan_wavefront(we_f).wavefront_dim == 1
        assert plan_wavefront(we_b).wavefront_dim == 1

    def test_sweep_directions(self):
        state = simple.build(12)
        ns_f, ns_b, we_f, we_b = simple.compile_sweeps(state)
        assert ns_f.loops.signs[0] == 1
        assert ns_b.loops.signs[0] == -1
        assert we_f.loops.signs[1] == 1
        assert we_b.loops.signs[1] == -1

    def test_ns_solve_matches_thomas_oracle(self):
        # The NS conduction sweep is per-column the Thomas algorithm; reuse
        # the Tomcatv oracle with SIMPLE's coefficient arrays.
        n = 12
        state = simple.build(n, seed=5)
        simple.eos_phase(state)
        simple._setup_conduction(state)
        simple._zero_sweep_boundaries(state, dim=0)
        interior = state.interior
        cc = state.cc.read(interior).copy()
        dd = state.dd.read(interior).copy()
        rhs = state.e.read(interior).copy()
        sub = state.cc.read(interior.shift(zpl.NORTH)).copy()
        ns_f, ns_b, _, _ = simple.compile_sweeps(state)
        execute_vectorized(ns_f)
        execute_vectorized(ns_b)
        expected = tomcatv.thomas_columns(cc, dd, rhs, sub)
        np.testing.assert_allclose(state.e.read(interior), expected, rtol=1e-12)

    def test_conduction_diffuses_peak(self):
        # Heat conduction must pull the hot-blob peak down (the walls are
        # cold Dirichlet boundaries, so peak-to-trough is not monotone, but
        # the maximum always diffuses downward).
        state = simple.build(16)
        interior = state.interior
        before = state.e.read(interior).max()
        simple.conduction_phase(state)
        after = state.e.read(interior).max()
        assert after < before

    def test_rr_is_contraction_candidate(self):
        from repro.compiler import contractible

        state = simple.build(10)
        ns_f, _, _, _ = simple.compile_sweeps(state)
        assert contractible(ns_f, state.rr)


class TestCycle:
    def test_cycle_keeps_state_physical(self):
        state = simple.build(16)
        simple.run(state, 5)
        assert np.all(state.rho.read(state.interior) > 0)
        assert np.all(state.e.read(state.interior) >= 0)
        assert np.all(np.isfinite(state.u.to_numpy()))

    def test_blob_drives_outflow(self):
        # The pressure blob accelerates material outward.
        state = simple.build(16)
        simple.run(state, 3)
        u = state.u.read(state.interior)
        assert np.abs(u).max() > 0.0

    def test_courant_history(self):
        state = simple.build(12)
        speeds = simple.run(state, 4)
        assert len(speeds) == 4
        assert all(s > 0 for s in speeds)


class TestProfile:
    def test_wavefront_fraction_small(self):
        # The paper's SIMPLE story: wavefronts are a small slice, so the
        # whole-program win is modest.
        prog = simple.profile(257)
        assert 0.03 < prog.wavefront_fraction() < 0.2

    def test_composition(self):
        from repro.models import PhaseKind

        prog = simple.profile(64, cycles=2)
        serial = prog.compose(lambda ph: ph.work)
        assert serial == pytest.approx(prog.total_work())
        halved = prog.compose(
            lambda ph: ph.work / 2 if ph.kind is PhaseKind.PARALLEL else ph.work
        )
        assert halved < serial
