"""The autotuner measures a plausible machine and feeds Equation (1)."""

import pytest

from repro.compiler import compile_scan
from repro.errors import MachineError
from repro.machine import MachineParams
from repro.machine.schedules import plan_wavefront
from repro.parallel.autotune import (
    autotune,
    effective_params,
    measure_block_overhead,
    measure_comm,
    measure_compute_cost,
    normalized_params,
    optimal_block_size,
)
from tests.conftest import record_tomcatv_block


def _compiled(n=20):
    block, _ = record_tomcatv_block(n)
    return compile_scan(block)


def test_measure_comm_fits_positive_alpha():
    comm = measure_comm(sizes=(1, 256, 2048), repeats=5)
    assert comm.alpha_seconds > 0
    assert comm.beta_seconds >= 0
    assert len(comm.samples) == 3
    # The fitted line should not wildly undercut the smallest sample.
    assert comm.message_seconds(1) <= 10 * comm.samples[0][1]


def test_measure_comm_needs_two_sizes():
    with pytest.raises(MachineError):
        measure_comm(sizes=(4,))


def test_compute_cost_restores_state():
    compiled = _compiled()
    from repro.parallel.sharedmem import collect_arrays

    before = [a._data.copy() for a in collect_arrays(compiled)]
    cost = measure_compute_cost(compiled, repeats=2)
    after = [a._data.copy() for a in collect_arrays(compiled)]
    assert cost > 0
    for b, a in zip(before, after):
        assert (b == a).all()


def test_block_overhead_nonnegative():
    compiled = _compiled()
    assert measure_block_overhead(compiled, block=4, repeats=1) >= 0.0


def test_normalized_params_units():
    comm = measure_comm(sizes=(1, 512), repeats=3)
    params = normalized_params(comm, compute_seconds=1e-6)
    assert isinstance(params, MachineParams)
    assert params.alpha == pytest.approx(comm.alpha_seconds / 1e-6)
    with pytest.raises(MachineError):
        normalized_params(comm, compute_seconds=0.0)


def test_effective_alpha_shrinks_with_procs():
    comm = measure_comm(sizes=(1, 512), repeats=3)
    two = effective_params(comm, 1e-6, 1e-3, 2)
    four = effective_params(comm, 1e-6, 1e-3, 4)
    assert four.alpha < two.alpha


def test_optimal_block_size_degenerates_to_full_width_serially():
    compiled = _compiled()
    plan = plan_wavefront(compiled)
    params = MachineParams(name="x", alpha=100.0, beta=1.0)
    cols = compiled.region.extent(plan.chunk_dim)
    assert optimal_block_size(plan, params, 1) == cols
    b = optimal_block_size(plan, params, 4)
    assert 1 <= b <= cols


def test_autotune_end_to_end():
    compiled = _compiled()
    result = autotune(compiled, 2)
    plan = plan_wavefront(compiled)
    cols = compiled.region.extent(plan.chunk_dim)
    assert 1 <= result.block_size <= cols
    assert result.compute_seconds > 0
    assert result.params.alpha > 0
    assert result.effective_params.alpha >= result.params.alpha
    assert result.plan_kind == "flat"  # one looped dim: nothing to skew


def test_autotune_records_skewed_plan_kind():
    from repro.apps.alignment import build_score_block

    compiled, _ = build_score_block("GATTACAGG" * 3, "GCATGCUTA" * 3)
    comm = measure_comm(sizes=(1, 512), repeats=3)
    result = autotune(compiled, 2, comm=comm)
    assert result.plan_kind == "skewed"


def test_tuned_block_size_memoises_per_plan_kind(monkeypatch):
    import sys

    mod = sys.modules["repro.parallel.autotune"]
    compiled = _compiled()
    mod._BLOCK_COSTS.clear()
    mod.tuned_block_size(compiled, 2)
    assert len(mod._BLOCK_COSTS) == 1
    ((_, kind),) = mod._BLOCK_COSTS
    assert kind == "flat"
    # Same block, same kind: measured once.
    mod.tuned_block_size(compiled, 2)
    assert len(mod._BLOCK_COSTS) == 1
    # Forcing interp changes the plan kind: a separate measurement.
    monkeypatch.setenv("REPRO_ENGINE", "interp")
    mod.tuned_block_size(compiled, 2)
    assert len(mod._BLOCK_COSTS) == 2
    assert {k for _, k in mod._BLOCK_COSTS} == {"flat", "interp"}
