"""Always-on, streaming observability: the live tier of :mod:`repro.obs`.

Where :mod:`repro.obs.trace` is the opt-in, full-fidelity recorder
(every span, unbounded, ``REPRO_TRACE=1``), this package is the tier
that is *always* running:

* :mod:`~repro.obs.live.flight` — a bounded ring buffer of recent events
  with exact drop accounting, for post-mortem on failure;
* :mod:`~repro.obs.live.metrics` — counters/gauges/log-bucketed
  histograms with an incremental flush/absorb protocol, so pool workers
  stream deltas home over the existing result channel;
* :mod:`~repro.obs.live.context` — request-id propagation from
  :mod:`repro.serve` down to per-block kernel spans, plus critical-path
  extraction over a request's blocks;
* :mod:`~repro.obs.live.monitor` — the streaming α/β re-fit and drift
  detector (ROADMAP 5(b)'s sensor);
* :mod:`~repro.obs.live.prometheus` — text exposition for ``/metrics``;
* :mod:`~repro.obs.live.top` — the ``python -m repro.obs top`` dashboard.
"""

from repro.obs.live.context import (
    RequestContext,
    block_spans,
    critical_path,
    current_context,
    current_tags,
    path_duration,
    request_context,
    request_slice,
    run_with_context,
    span_rids,
)
from repro.obs.live.flight import (
    FLIGHT,
    FlightRecorder,
    flight_enabled,
    format_flight_tail,
)
from repro.obs.live.metrics import (
    LIVE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    fabric_summary,
    worker_table,
)
from repro.obs.live.monitor import MONITOR, ModelMonitor, StreamingFit
from repro.obs.live.prometheus import CONTENT_TYPE, prometheus_text, wants_text

__all__ = [
    "CONTENT_TYPE",
    "Counter",
    "FLIGHT",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "LIVE",
    "MONITOR",
    "MetricsRegistry",
    "ModelMonitor",
    "RequestContext",
    "StreamingFit",
    "block_spans",
    "critical_path",
    "current_context",
    "current_tags",
    "fabric_summary",
    "flight_enabled",
    "format_flight_tail",
    "path_duration",
    "prometheus_text",
    "request_context",
    "request_slice",
    "run_with_context",
    "span_rids",
    "wants_text",
    "worker_table",
]
