"""Load-test bench for :mod:`repro.serve` — the batching win, measured.

Two measurement harnesses (see :mod:`repro.serve.client`):

* **Stepped open loop** — three offered-QPS levels against one server;
  per level: p50/p99 latency, sustained throughput, rejection rate and
  the server's batch-size histogram.  This is the latency-vs-load curve.
* **Closed-loop saturation** — 16 back-to-back clients flood one
  same-shape alignment request for a fixed window, once with coalescing
  disabled (``batch_max=1``: every request is its own kernel dispatch)
  and once with the 5 ms window + ``batch_max=32``.  The asserted gate:
  batching sustains **>= 2x** the per-request-dispatch throughput.  The
  mechanism is exactly the paper's economics — the per-dispatch overhead
  (Python loop set-up per anti-diagonal, request plumbing) is paid once
  per fused rank-3 batch instead of once per request.

Results land in ``BENCH_serve.json`` (:func:`repro.util.benchjson.write_bench`).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.serve import ServeApp, ServeConfig
from repro.serve.client import run_closed_loop, run_open_loop, summarize
from repro.util.benchjson import write_bench

#: One same-shape scoring request, the flood's unit of work.
SEQ_A = "ACGTAGGCTA" * 6
SEQ_B = "TTACGGATCC" * 6
PAYLOAD = {"kind": "nw", "a": SEQ_A, "b": SEQ_B}

QPS_LEVELS = (50, 150, 400)
OPEN_LOOP_SECONDS = 1.5
SATURATION_CLIENTS = 16
SATURATION_SECONDS = 2.0

_RESULTS: list[dict] = []


def _serve_config(**overrides) -> ServeConfig:
    values = dict(port=0, window=0.005, batch_max=32, max_queue=256,
                  timeout=60.0)
    values.update(overrides)
    return ServeConfig(**values)


async def _with_app(config: ServeConfig, measure):
    app = ServeApp(config)
    await app.start()
    try:
        return await measure(app), app.metrics.snapshot()
    finally:
        await app.stop()


def test_stepped_open_loop_latency():
    """Latency/rejection across >= 3 offered-QPS levels, one server."""

    async def run():
        config = _serve_config()
        app = ServeApp(config)
        await app.start()
        levels = []
        try:
            for qps in QPS_LEVELS:
                samples = await run_open_loop(
                    "127.0.0.1", app.port, lambda i: PAYLOAD,
                    qps=qps, duration=OPEN_LOOP_SECONDS,
                )
                levels.append((qps, summarize(samples, OPEN_LOOP_SECONDS)))
        finally:
            await app.stop()
        return levels, app.metrics.snapshot()

    levels, metrics = asyncio.run(run())
    for qps, stats in levels:
        _RESULTS.append({
            "test": "open_loop",
            "offered_qps": qps,
            **stats,
            "batch_histogram": metrics["batches"]["histogram"],
        })
        assert stats["completed"] > 0, f"no request completed at {qps} qps"
        # An admitted request's latency stays bounded at every level.
        assert stats["p99_ms"] < 5_000
    # Offered load was met at the lowest level (no saturation there).
    low = levels[0][1]
    assert low["rejection_rate"] == 0.0
    assert low["completed"] >= QPS_LEVELS[0] * OPEN_LOOP_SECONDS * 0.9


def test_batching_doubles_saturated_throughput():
    """The gate: coalescing sustains >= 2x per-request-dispatch throughput."""

    async def saturate(batch_max: int, window: float):
        async def measure(app):
            return await run_closed_loop(
                "127.0.0.1", app.port, lambda i, n: PAYLOAD,
                clients=SATURATION_CLIENTS, duration=SATURATION_SECONDS,
            )

        (samples, wall), metrics = await _with_app(
            _serve_config(batch_max=batch_max, window=window), measure
        )
        return summarize(samples, wall), metrics

    async def run():
        per_request = await saturate(1, 0.0)
        batched = await saturate(32, 0.005)
        return per_request, batched

    (per_stats, per_metrics), (bat_stats, bat_metrics) = asyncio.run(run())
    speedup = bat_stats["throughput_rps"] / max(per_stats["throughput_rps"], 1e-9)
    _RESULTS.append({
        "test": "saturation_per_request",
        "clients": SATURATION_CLIENTS,
        **per_stats,
        "batch_histogram": per_metrics["batches"]["histogram"],
    })
    _RESULTS.append({
        "test": "saturation_batched",
        "clients": SATURATION_CLIENTS,
        **bat_stats,
        "batch_histogram": bat_metrics["batches"]["histogram"],
        "speedup_vs_per_request": speedup,
    })
    assert per_stats["completed"] > 0 and bat_stats["completed"] > 0
    # Batching actually happened (fused dispatches larger than 1)...
    assert bat_metrics["batches"]["mean_size"] > 1.5
    # ...and bought the sustained-throughput multiple the design promises.
    assert speedup >= 2.0, (
        f"batched {bat_stats['throughput_rps']:.0f} rps vs "
        f"per-request {per_stats['throughput_rps']:.0f} rps = {speedup:.2f}x"
    )


@pytest.fixture(scope="module", autouse=True)
def _flush_results():
    yield
    if _RESULTS:
        write_bench(
            "serve",
            _RESULTS,
            meta={
                "qps_levels": list(QPS_LEVELS),
                "saturation_clients": SATURATION_CLIENTS,
                "pair_shape": [len(SEQ_A), len(SEQ_B)],
            },
        )
