"""Tests for the block-size selection strategies (the paper's future work)."""

import pytest

from repro.apps import suite
from repro.errors import ModelError
from repro.machine import CRAY_T3E, MachineParams, pipelined_wavefront
from repro.models.tuning import (
    make_simulated_probe,
    select_dynamic,
    select_profiled,
    select_static,
)


@pytest.fixture(scope="module")
def setup():
    compiled = suite.get("single-stream").build(129)
    probe = make_simulated_probe(compiled, CRAY_T3E, n_procs=8)
    # Exhaustive reference optimum over the full range.
    times = {b: probe(b) for b in range(1, 130)}
    best_b = min(times, key=times.get)
    return compiled, probe, times, best_b


class TestStatic:
    def test_no_probes(self, setup):
        compiled, _, _, _ = setup
        result = select_static(compiled, CRAY_T3E, n_procs=8)
        assert result.probes == 0
        assert result.strategy == "static"

    def test_close_to_true_optimum(self, setup):
        compiled, _, times, best_b = setup
        result = select_static(compiled, CRAY_T3E, n_procs=8)
        # Quality: within 2% of the best achievable time.
        assert times[result.block_size] <= 1.02 * times[best_b]


class TestProfiled:
    def test_two_probes(self, setup):
        compiled, probe, _, _ = setup
        result = select_profiled(compiled, CRAY_T3E, n_procs=8, probe=probe)
        assert result.probes == 2
        assert len(result.probe_times) == 2

    def test_recovers_machine_constants(self, setup):
        # Profiling on the simulator must rediscover a b* close to the
        # static selector's (the simulator implements the model's cost).
        compiled, probe, times, best_b = setup
        result = select_profiled(compiled, CRAY_T3E, n_procs=8, probe=probe)
        assert times[result.block_size] <= 1.05 * times[best_b]

    def test_works_without_trusting_alpha_beta(self, setup):
        # Feed the selector WRONG published constants; the probes fix it.
        compiled, probe, times, best_b = setup
        lying = MachineParams(name="lying", alpha=1.0, beta=0.0)
        result = select_profiled(compiled, lying, n_procs=8, probe=probe)
        assert times[result.block_size] <= 1.05 * times[best_b]

    def test_bad_probe_sizes_rejected(self, setup):
        compiled, probe, _, _ = setup
        with pytest.raises(ModelError):
            select_profiled(
                compiled, CRAY_T3E, n_procs=8, probe=probe, probe_sizes=(16, 16)
            )


class TestDynamic:
    def test_finds_near_optimum(self, setup):
        compiled, probe, times, best_b = setup
        result = select_dynamic(compiled, CRAY_T3E, n_procs=8, probe=probe)
        assert times[result.block_size] <= 1.01 * times[best_b]

    def test_probe_budget_logarithmic(self, setup):
        compiled, probe, _, _ = setup
        result = select_dynamic(compiled, CRAY_T3E, n_procs=8, probe=probe)
        # Ternary search over 1..129: far fewer probes than exhaustive.
        assert result.probes <= 24

    def test_probe_times_recorded(self, setup):
        compiled, probe, _, _ = setup
        result = select_dynamic(compiled, CRAY_T3E, n_procs=8, probe=probe)
        assert len(result.probe_times) == result.probes
        assert all(t > 0 for _, t in result.probe_times)

    def test_repr(self, setup):
        compiled, probe, _, _ = setup
        result = select_dynamic(compiled, CRAY_T3E, n_procs=8, probe=probe)
        assert "dynamic" in repr(result)


class TestStrategiesAgree:
    def test_all_three_land_close(self, setup):
        compiled, probe, times, best_b = setup
        chosen = {
            s.strategy: s.block_size
            for s in (
                select_static(compiled, CRAY_T3E, 8),
                select_profiled(compiled, CRAY_T3E, 8, probe=probe),
                select_dynamic(compiled, CRAY_T3E, 8, probe=probe),
            )
        }
        for strategy, b in chosen.items():
            assert times[b] <= 1.05 * times[best_b], (strategy, b)

    def test_dynamic_respects_b_max(self, setup):
        compiled, probe, _, _ = setup
        result = select_dynamic(compiled, CRAY_T3E, 8, probe=probe, b_max=10)
        assert result.block_size <= 10
