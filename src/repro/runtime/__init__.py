"""Sequential execution engines for compiled scan blocks.

* :func:`execute_loopnest` — scalar element-at-a-time oracle (slow, obviously
  correct);
* :func:`execute_vectorized` — the production engine: Python loop over the
  dependence-carrying dimensions, numpy across the parallel ones.  By default
  it dispatches to ahead-of-time statement kernels (:mod:`repro.runtime.kernels`),
  hyperplane-skewed for multi-dependence wavefronts; ``engine="flat"`` disables
  skewing, ``engine="interp"`` / ``REPRO_ENGINE=interp`` select the
  tree-walking path;
* :func:`execute_interpreted` — pure array semantics for non-scan statements
  (same kernel fast path, same escape hatch);
* :mod:`repro.runtime.kernels` — the AOT kernel layer: plan templates, the
  region-plan cache, compile-time aliasing analysis, plan fingerprints;
* :class:`ArraySnapshot` / :func:`run_and_capture` — differential-test helpers.
"""

from repro.runtime.loopnest import execute_loopnest
from repro.runtime.vectorized import execute_vectorized
from repro.runtime.interp import (
    execute_interpreted,
    ArraySnapshot,
    run_and_capture,
)
from repro.runtime.kernels import (
    ENGINE_ENV,
    ENGINES,
    KERNEL_STATS,
    LEGACY_ENGINE_ENV,
    SKEW_ENV,
    PlanRunner,
    default_engine,
    plan_fingerprint,
    plan_kind,
    resolve_engine,
    skew_enabled,
    statement_needs_copy,
    try_execute_kernels,
)

__all__ = [
    "ENGINE_ENV",
    "ENGINES",
    "KERNEL_STATS",
    "LEGACY_ENGINE_ENV",
    "SKEW_ENV",
    "ArraySnapshot",
    "PlanRunner",
    "default_engine",
    "execute_loopnest",
    "execute_vectorized",
    "execute_interpreted",
    "plan_fingerprint",
    "plan_kind",
    "resolve_engine",
    "run_and_capture",
    "skew_enabled",
    "statement_needs_copy",
    "try_execute_kernels",
]
