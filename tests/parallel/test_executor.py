"""The multiprocess backend computes exactly what the sequential engine does.

These are the acceptance tests of the real backend: Tomcatv's forward
elimination under the pipelined and naive schedules, on real OS processes,
must leave every array bit-identical to ``execute_vectorized`` — same
compiled block, same storage, different machine.  Worker counts stay at two
(one test opts into a 2x2 mesh when the host has the cores) so the suite is
CI-safe.
"""

import os

import numpy as np
import pytest

from repro.compiler import compile_scan
from repro.errors import DistributionError, MachineError
from repro.machine import ProcessorGrid
from repro.parallel import ParallelRun, execute
from repro.runtime import execute_vectorized, run_and_capture
from tests.conftest import record_tomcatv_block


def _compiled_tomcatv(n=24):
    block, arrays = record_tomcatv_block(n)
    return compile_scan(block), arrays


def _assert_matches_vectorized(compiled, arrays, **kwargs):
    oracle = run_and_capture(execute_vectorized, compiled, arrays)
    runs: list[ParallelRun] = []

    def engine(c):
        runs.append(execute(c, **kwargs))

    parallel = run_and_capture(engine, compiled, arrays)
    for array, want, got in zip(arrays, oracle, parallel):
        np.testing.assert_array_equal(
            got, want, err_msg=f"array {array.name} diverged under {kwargs}"
        )
    return runs[0]


def test_pipelined_two_procs_identical():
    compiled, arrays = _compiled_tomcatv()
    run = _assert_matches_vectorized(
        compiled, arrays, grid=2, schedule="pipelined", block=4
    )
    assert run.n_procs == 2
    assert run.block_size == 4
    assert run.n_chunks > 1
    assert run.wall_time > 0
    assert len(run.worker_times) == 2


def test_naive_two_procs_identical():
    compiled, arrays = _compiled_tomcatv()
    run = _assert_matches_vectorized(compiled, arrays, grid=2, schedule="naive")
    assert run.schedule == "naive"
    assert run.n_chunks == 1


def test_single_proc_runs_in_real_process():
    compiled, arrays = _compiled_tomcatv(16)
    run = _assert_matches_vectorized(
        compiled, arrays, grid=1, schedule="pipelined", block=16
    )
    assert run.n_procs == 1


def test_grid_accepts_processor_grid_object():
    compiled, arrays = _compiled_tomcatv(16)
    run = _assert_matches_vectorized(
        compiled, arrays, grid=ProcessorGrid((2,)), schedule="pipelined", block=8
    )
    assert run.grid_dims == (2,)


def test_mesh_two_chains_identical():
    # Rank-2 grid: two independent single-stage chains (2 workers total).
    compiled, arrays = _compiled_tomcatv(16)
    run = _assert_matches_vectorized(
        compiled, arrays, grid=(1, 2), schedule="pipelined", block=4
    )
    assert run.grid_dims == (1, 2)


@pytest.mark.skipif((os.cpu_count() or 1) < 4, reason="needs 4 cores")
def test_mesh_2x2_identical():
    compiled, arrays = _compiled_tomcatv(20)
    run = _assert_matches_vectorized(
        compiled, arrays, grid=(2, 2), schedule="pipelined", block=3
    )
    assert run.n_procs == 4


def test_backward_wavefront_reversed_chain():
    # The south->north solve exercises the reversed processor chain.
    from repro import zpl

    n = 18
    rng = np.random.default_rng(3)
    base = zpl.Region.square(1, n)
    a = zpl.ZArray(base, name="a")
    a.load(rng.uniform(0.5, 1.5, size=base.shape))
    with zpl.covering(zpl.Region.of((2, n - 1), (2, n - 1))):
        with zpl.scan(execute=False) as block:
            a[...] = 0.5 * a + 0.25 * (a.p @ zpl.SOUTH)
    compiled = compile_scan(block)
    _assert_matches_vectorized(compiled, [a], grid=2, schedule="pipelined", block=5)


def test_rejects_bad_arguments():
    compiled, arrays = _compiled_tomcatv(12)
    with pytest.raises(MachineError):
        execute(compiled, grid=2, schedule="transpose")
    with pytest.raises(MachineError):
        execute(compiled, grid=2, block=0)
    with pytest.raises(MachineError):
        execute(compiled, grid=(1, 1, 2))


def test_mesh_rejects_coupled_chunk_dimension():
    # A block whose chunk dimension carries a dependence cannot be meshed.
    from repro import zpl

    n = 12
    base = zpl.Region.square(1, n)
    a = zpl.ZArray(base, name="a", fluff=2)
    a.fill(1.0)
    with zpl.covering(zpl.Region.square(3, n - 1)):
        with zpl.scan(execute=False) as block:
            a[...] = 0.3 * (a.p @ (-1, 0)) + 0.2 * (a.p @ (0, -1)) + 0.1
    compiled = compile_scan(block)
    with pytest.raises(DistributionError):
        execute(compiled, grid=(2, 1), schedule="pipelined", block=2)


def test_worker_failure_raises_instead_of_hanging():
    # Sabotage the pickled payload via a statement reading outside storage:
    # build a block whose shifted read exceeds the fluff, which only explodes
    # at execution time inside the workers.
    from repro import zpl

    n = 10
    base = zpl.Region.square(1, n)
    a = zpl.ZArray(base, name="a", fluff=1)
    a.fill(1.0)
    with zpl.covering(zpl.Region.square(4, n - 1)):
        with zpl.scan(execute=False) as block:
            a[...] = 0.5 * (a.p @ (-5, 0)) + 0.1
    compiled = compile_scan(block)
    with pytest.raises(MachineError, match="worker"):
        execute(compiled, grid=2, schedule="pipelined", block=4, timeout=30.0)
