"""Real multiprocess pipelined-wavefront execution (the measured machine).

Everything else in :mod:`repro.machine` runs on a virtual clock; this package
runs the same compiled scan blocks on the *host*: one OS process per
processor-grid cell, global arrays in :mod:`multiprocessing.shared_memory`,
pipeline synchronisation over real pipes, and per-block local execution
through the very same :func:`~repro.runtime.vectorized.execute_vectorized`
the sequential engine uses — so the compiler output, the distribution
machinery (:class:`~repro.machine.grid.ProcessorGrid`,
:class:`~repro.machine.distribution.BlockMap`,
:func:`~repro.machine.schedules.plan_wavefront`) and the semantics are all
shared with the simulator, and the results are element-identical.

Layers:

* :mod:`repro.parallel.sharedmem` — shared-segment array storage;
* :mod:`repro.parallel.channels`  — token pipes between pipeline stages;
* :mod:`repro.parallel.collectives` — multicast epoch fabric + double
  buffering (one stamp releases a whole fan-out; ``REPRO_MULTICAST``);
* :mod:`repro.parallel.worker`    — the per-process SPMD loop;
* :mod:`repro.parallel.executor`  — :func:`execute`, the single entry point;
* :mod:`repro.parallel.pool`      — :class:`WorkerPool`, fork once / run many;
* :mod:`repro.parallel.autotune`  — measured α/β → Equation (1) block sizes;
* :mod:`repro.parallel.bench`     — measured-vs-predicted speedup curves.
"""

from repro.parallel.autotune import (
    AutotuneResult,
    CollectiveParams,
    CommParams,
    autotune,
    collective_effective_params,
    dynamic_block_size,
    effective_params,
    host_collective,
    host_comm,
    measure_block_overhead,
    measure_comm,
    measure_compute_cost,
    measure_multicast,
    measure_pool_dispatch,
    measured_probe,
    normalized_params,
    optimal_block_size,
    taskgraph_tiling,
    tuned_block_size,
)
from repro.parallel.bench import oversubscription, speedup_curve, tomcatv_forward
from repro.parallel.collectives import (
    DOUBLE_BUFFER_ENV,
    MULTICAST_ENV,
    MulticastChannel,
    MulticastFabric,
    MulticastGroups,
    MulticastSpec,
    boundary_layout,
    plan_groups,
    resolve_double_buffer,
    resolve_multicast,
)
from repro.parallel.executor import (
    MAX_PROCS_ENV,
    ParallelRun,
    SCHEDULE_ENV,
    SCHEDULES,
    default_grid,
    execute,
    resolve_schedule,
)
from repro.parallel.pool import (
    PoolSupervisor,
    WorkerPool,
    close_pools,
    shared_pool,
)
from repro.parallel.sharedmem import (
    BoundaryPool,
    SharedArrayPool,
    collect_arrays,
)
from repro.parallel.taskgraph import TaskgraphReport

__all__ = [
    "AutotuneResult",
    "BoundaryPool",
    "CollectiveParams",
    "CommParams",
    "DOUBLE_BUFFER_ENV",
    "MAX_PROCS_ENV",
    "MULTICAST_ENV",
    "MulticastChannel",
    "MulticastFabric",
    "MulticastGroups",
    "MulticastSpec",
    "ParallelRun",
    "SCHEDULE_ENV",
    "SCHEDULES",
    "TaskgraphReport",
    "SharedArrayPool",
    "PoolSupervisor",
    "WorkerPool",
    "autotune",
    "boundary_layout",
    "close_pools",
    "collect_arrays",
    "collective_effective_params",
    "default_grid",
    "dynamic_block_size",
    "effective_params",
    "execute",
    "host_collective",
    "host_comm",
    "measure_block_overhead",
    "measure_comm",
    "measure_compute_cost",
    "measure_multicast",
    "measure_pool_dispatch",
    "measured_probe",
    "normalized_params",
    "optimal_block_size",
    "oversubscription",
    "plan_groups",
    "resolve_double_buffer",
    "resolve_multicast",
    "resolve_schedule",
    "shared_pool",
    "speedup_curve",
    "taskgraph_tiling",
    "tomcatv_forward",
    "tuned_block_size",
]
