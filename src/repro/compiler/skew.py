"""Hyperplane skewing: derive a legal integer time vector for a loop nest.

The derived loop structure of a multi-dependence wavefront — Needleman-
Wunsch, Smith-Waterman, any recurrence whose WSV has two or more nonzero
components — has *no* completely parallel dimension: every dimension either
carries the wavefront or is serialised, so the slab engines degenerate into
an O(n·m) pure-Python point loop.  The classic hyperplane (loop-skewing)
transformation recovers vector parallelism anyway: pick an integer **time
vector** τ over the looped dimensions and execute all iteration points with
equal ``τ·i`` — one *hyperplane*, the anti-diagonal for τ = (1, 1) —
simultaneously, sweeping the hyperplanes in increasing time.

Legality mirrors the classical condition, phrased over the paper's
unconstrained distance vectors (which live in array-dimension space, so no
loop-nest normalisation is needed):

* every nonzero **true** dependence vector ``v`` must satisfy ``τ·v > 0``
  (the producing iteration lies on a strictly earlier hyperplane);
* every **anti**/**output** vector must satisfy ``τ·v ≥ 0`` — a tie is fine
  because execution keeps array semantics within a hyperplane: each
  statement gathers its whole right-hand side (fancy indexing copies)
  before scattering, and statements run in lexical order;
* components over completely *parallel* dimensions are ignored (those
  dimensions stay vectorised inside each hyperplane, exactly as in the flat
  engines; true dependences have zero components there by construction of
  :func:`repro.compiler.wsv.classify`).

The search is tiny by design: candidate components are the loop structure's
traversal signs scaled by 1..3, smallest |τ| first, so the common DP
wavefronts get the canonical anti-diagonal ``τ = (1, 1)`` (or ``(-1, -1)``
for descending traversals) and pathological vectors like ``(-1, 2)`` are
still covered.  When no candidate is legal — or when fewer than two
dimensions are looped, where the flat engines already vectorise everything
that can be vectorised — :func:`derive_skew` returns ``None`` and the
kernel engine keeps its flat point loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Sequence

from repro.compiler.loopstruct import LoopStructure
from repro.compiler.udv import Dependence, DepKind
from repro.compiler.wsv import DimClass

#: Largest |τ component| the search will try (per looped dimension).
MAX_COEFF = 3

#: Looped-dimension counts the skewed plan family supports.  Beyond four
#: dimensions the candidate search and the index tables stop paying off.
MAX_SKEW_RANK = 4


@dataclass(frozen=True)
class Skew:
    """A legal hyperplane schedule for one compiled scan block.

    ``dims`` are the looped (non-parallel) dimensions in loop order,
    ``tau`` the integer time coefficient per entry of ``dims``: iteration
    point ``i`` executes at time ``sum(tau[k] * i[dims[k]])``.
    """

    dims: tuple[int, ...]
    tau: tuple[int, ...]

    @property
    def rank(self) -> int:
        return len(self.dims)

    def time(self, index: Sequence[int]) -> int:
        """The hyperplane (execution time) of one iteration point."""
        return sum(t * index[d] for t, d in zip(self.tau, self.dims))

    def __repr__(self) -> str:
        terms = "+".join(
            f"{t}*i{d}" if t != 1 else f"i{d}" for t, d in zip(self.tau, self.dims)
        )
        return f"Skew(t={terms})"


def looped_dims(loops: LoopStructure) -> tuple[int, ...]:
    """The non-parallel dimensions, outermost first (the skewable subspace)."""
    return tuple(
        d for d in loops.order if loops.classes[d] is not DimClass.PARALLEL
    )


def legal_time_vector(
    tau: Sequence[int],
    dims: Sequence[int],
    dependences: Sequence[Dependence],
) -> bool:
    """The hyperplane legality rule over unconstrained distance vectors."""
    for dep in dependences:
        restricted = tuple(dep.vector[d] for d in dims)
        dot = sum(t * c for t, c in zip(tau, restricted))
        if dep.kind is DepKind.TRUE:
            if any(restricted) and dot <= 0:
                return False
        elif dot < 0:  # anti/output: write must not overtake the read
            return False
    return True


def derive_time_vector(
    loops: LoopStructure, dependences: Sequence[Dependence]
) -> Skew | None:
    """Find a legal τ over the looped dimensions, or ``None``.

    Only worth doing when at least two dimensions are looped (otherwise the
    flat plans already vectorise the whole parallel subspace).  Candidates
    are the traversal signs scaled by 1..:data:`MAX_COEFF`, enumerated
    smallest total |τ| first so the canonical anti-diagonal wins whenever
    it is legal.
    """
    dims = looped_dims(loops)
    if not 2 <= len(dims) <= MAX_SKEW_RANK:
        return None
    scales = sorted(
        product(range(1, MAX_COEFF + 1), repeat=len(dims)),
        key=lambda cs: (sum(cs), cs),
    )
    signs = tuple(loops.signs[d] for d in dims)
    for coeffs in scales:
        tau = tuple(s * c for s, c in zip(signs, coeffs))
        if legal_time_vector(tau, dims, dependences):
            return Skew(dims, tau)
    return None


def derive_skew(compiled) -> Skew | None:
    """The skew of a :class:`~repro.compiler.lowering.CompiledScan`, if legal.

    Accepts any object carrying ``loops`` and ``dependences`` (duck-typed so
    the kernel layer can call it without importing lowering).
    """
    return derive_time_vector(compiled.loops, compiled.dependences)
