"""Request coalescing: same-key requests within a window become one dispatch.

The batcher is the heart of :mod:`repro.serve`.  Requests arrive on the
event loop and are appended to a per-``batch_key`` pending list; a key
becomes *ready* when its oldest request has waited ``window`` seconds or
the list reaches ``batch_max``.  Ready keys are ordered by the
scheduling :class:`~repro.serve.scheduler.Policy` and dispatched one at
a time to the compute backend on a single worker thread (compute is a
shared resource — the kernels and the worker pool serialise anyway, and
one thread keeps the event loop free to keep accepting while a batch
runs).

Admission control happens at :meth:`Batcher.submit`: when ``max_queue``
requests are already pending the submission raises
:class:`~repro.serve.protocol.QueueFull` with a ``retry_after`` hint of
one dispatch's worth of drain time.  Requests whose caller gave up
(per-request timeout cancelled the future) are skipped at dispatch time
so a timed-out flood cannot poison the batches behind it.

A backend failure fails *that batch's* requests — typed, via the
future — and the dispatcher keeps running; the next batch gets a fresh
chance (with :class:`~repro.parallel.PoolSupervisor` underneath, on a
fresh pool).
"""

from __future__ import annotations

import asyncio
import itertools
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.obs import NULL_TRACER
from repro.obs.live import FLIGHT, RequestContext, run_with_context
from repro.serve.metrics import ServeMetrics
from repro.serve.protocol import QueueFull, ShuttingDown
from repro.serve.scheduler import Candidate, Policy, estimate_cost


@dataclass
class BatchResult:
    """What each request's future resolves to."""

    value: object  # endpoint-specific result payload
    batch_size: int
    queue_wait: float  # seconds between enqueue and dispatch
    compute: float  # seconds the batch spent in the backend
    batch_id: int


@dataclass
class _Pending:
    request: object
    future: asyncio.Future
    enqueued: float
    rid: int = field(default=0)


class Batcher:
    """Coalesces submissions per batch key and drains them via a policy.

    ``backend`` is a callable ``(key, [requests]) -> [values]`` executed on
    the batcher's worker thread; it must return one value per request, in
    order.
    """

    def __init__(
        self,
        backend,
        policy: Policy,
        *,
        window: float = 0.005,
        batch_max: int = 32,
        max_queue: int = 128,
        metrics: ServeMetrics | None = None,
        tracer=NULL_TRACER,
        model_params=None,
        procs: int = 1,
        clock=time.perf_counter,
    ):
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.backend = backend
        self.policy = policy
        self.window = window
        self.batch_max = batch_max
        self.max_queue = max_queue
        self.metrics = metrics or ServeMetrics(clock=clock)
        self.tracer = tracer
        self.model_params = model_params
        self.procs = procs
        self._clock = clock
        self._pending: dict[tuple, list[_Pending]] = {}
        self._inflight: list[_Pending] = []
        self._queued = 0
        self._closed = False
        self._wake = asyncio.Event()
        self._task: asyncio.Task | None = None
        self._executor = ThreadPoolExecutor(1, thread_name_prefix="repro-serve")
        self._batch_ids = itertools.count(1)

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def close(self) -> None:
        """Stop dispatching; fail whatever is still pending, typed."""
        self._closed = True
        self._wake.set()
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
        leftovers = list(self._inflight)
        for entries in self._pending.values():
            leftovers.extend(entries)
        for p in leftovers:
            if not p.future.done():
                p.future.set_exception(ShuttingDown("server is shutting down"))
        self._pending.clear()
        self._inflight = []
        self._queued = 0
        self._executor.shutdown(wait=True)

    # -- admission -----------------------------------------------------------
    @property
    def depth(self) -> int:
        return self._queued

    def retry_after_hint(self) -> float:
        """A coarse back-off: one window plus one batch's recent compute."""
        recent = list(self.metrics._compute)
        drain = recent[-1] if recent else 0.0
        return round(max(self.window + drain, 0.05), 3)

    def submit(self, request, rid: int = 0) -> asyncio.Future:
        """Enqueue; returns the future resolving to a :class:`BatchResult`."""
        if self._closed:
            raise ShuttingDown("server is shutting down")
        if self._queued >= self.max_queue:
            self.metrics.on_rejected()
            raise QueueFull(
                f"queue is full ({self._queued}/{self.max_queue} pending)",
                retry_after=self.retry_after_hint(),
            )
        future = asyncio.get_running_loop().create_future()
        entry = _Pending(request, future, self._clock(), rid)
        self._pending.setdefault(request.batch_key, []).append(entry)
        self._queued += 1
        self.metrics.on_enqueued(self._queued)
        self._wake.set()
        return future

    # -- dispatch loop -------------------------------------------------------
    def _ready_candidates(self, now: float) -> list[Candidate]:
        ready = []
        for key, entries in self._pending.items():
            oldest = entries[0].enqueued
            if len(entries) >= self.batch_max or now - oldest >= self.window:
                ready.append(
                    Candidate(
                        key=key,
                        items=min(len(entries), self.batch_max),
                        arrival=oldest,
                        cost=estimate_cost(
                            key,
                            min(len(entries), self.batch_max),
                            params=self.model_params,
                            p=self.procs,
                        ),
                    )
                )
        return ready

    def _next_deadline(self, now: float) -> float:
        return min(
            entries[0].enqueued + self.window for entries in self._pending.values()
        ) - now

    def _take(self, key: tuple) -> list[_Pending]:
        entries = self._pending[key]
        batch, rest = entries[: self.batch_max], entries[self.batch_max:]
        if rest:
            self._pending[key] = rest
        else:
            del self._pending[key]
        self._queued -= len(batch)
        self.metrics.on_dequeued(self._queued)
        # Callers that already gave up (timeout cancelled the future) are
        # dropped here, before the backend spends anything on them.
        return [p for p in batch if not p.future.done()]

    async def _run(self) -> None:
        while not self._closed:
            if not self._pending:
                self._wake.clear()
                await self._wake.wait()
                continue
            now = self._clock()
            ready = self._ready_candidates(now)
            if not ready:
                await asyncio.sleep(max(self._next_deadline(now), 0.0))
                continue
            choice = self.policy.select(ready)
            live = self._take(choice.key)
            if not live:
                continue
            self._inflight = live
            try:
                await self._dispatch(choice.key, live)
            finally:
                self._inflight = []

    async def _dispatch(self, key: tuple, live: list[_Pending]) -> None:
        loop = asyncio.get_running_loop()
        batch_id = next(self._batch_ids)
        requests = [p.request for p in live]
        # The batch's request context: every id this dispatch acts for.
        # run_in_executor does not carry ContextVars into the worker thread,
        # so the backend call is routed through run_with_context explicitly —
        # the pool reads the context back out at dispatch time.
        ctx = RequestContext(
            rids=tuple(p.rid for p in live), batch=batch_id
        )
        started = self._clock()
        try:
            values = await loop.run_in_executor(
                self._executor, run_with_context, ctx, self.backend,
                key, requests,
            )
            error = None
        except asyncio.CancelledError:
            raise  # close() is tearing us down; it fails the futures, typed
        except BaseException as exc:  # typed per-request; the loop survives
            values, error = None, exc
        finished = self._clock()
        compute = finished - started
        self.metrics.on_batch(len(live))
        self.tracer.add_span(
            "serve_batch", "compute", started, finished,
            batch=batch_id, items=len(live), kind=key[0],
            rids=list(ctx.rids),
        )
        FLIGHT.span(
            "serve_batch", started, finished,
            batch=batch_id, items=len(live), kind=key[0],
            rids=list(ctx.rids), ok=error is None,
        )
        if error is not None:
            self.metrics.on_failed()
            for p in live:
                if not p.future.done():
                    p.future.set_exception(error)
            return
        for p, value in zip(live, values):
            if not p.future.done():
                p.future.set_result(
                    BatchResult(
                        value=value,
                        batch_size=len(live),
                        queue_wait=started - p.enqueued,
                        compute=compute,
                        batch_id=batch_id,
                    )
                )
