"""Block data distributions: mapping region dimensions onto grid dimensions.

The paper's implementation assumption (Section 3.2, the WYSIWYG model): all
arrays in a scan block are aligned and block distributed, so communication
arises only from shifted references.  A :class:`BlockMap` captures one such
distribution: for each array dimension, either ``None`` (not distributed) or
the index of the grid dimension it is split across.

The final distribution decision is "deferred until application startup time"
(Section 2.2's assumptions) — in this library, until the executor is built.
"""

from __future__ import annotations

from repro.errors import DistributionError
from repro.machine.grid import ProcessorGrid
from repro.zpl.regions import Region


class BlockMap:
    """A balanced block distribution of a region over a processor grid.

    Parameters
    ----------
    region:
        The global index space being distributed.
    grid:
        The processor mesh.
    dim_map:
        ``dim_map[k]`` is the grid dimension that array dimension ``k`` is
        split across, or ``None`` when dimension ``k`` is not distributed.
        Every grid dimension with extent > 1 must be used exactly once.
    """

    def __init__(
        self,
        region: Region,
        grid: ProcessorGrid,
        dim_map: tuple[int | None, ...],
    ):
        if len(dim_map) != region.rank:
            raise DistributionError(
                f"dim_map has rank {len(dim_map)}, region has {region.rank}"
            )
        used = [g for g in dim_map if g is not None]
        if len(set(used)) != len(used):
            raise DistributionError(f"grid dimension used twice in {dim_map}")
        for g in used:
            if not 0 <= g < grid.rank:
                raise DistributionError(f"grid dimension {g} out of range")
        for g in range(grid.rank):
            if grid.dims[g] > 1 and g not in used:
                raise DistributionError(
                    f"grid dimension {g} (extent {grid.dims[g]}) is unused; "
                    f"map some array dimension onto it"
                )
        self.region = region
        self.grid = grid
        self.dim_map = tuple(dim_map)
        # Precompute per-dimension slab boundaries.
        self._slabs: list[list[Region] | None] = []
        for k, g in enumerate(self.dim_map):
            if g is None:
                self._slabs.append(None)
            else:
                self._slabs.append(region.split(k, grid.dims[g]))

    def distributed_dims(self) -> tuple[int, ...]:
        """Array dimensions that are split across processors."""
        return tuple(k for k, g in enumerate(self.dim_map) if g is not None)

    def local_region(self, proc: int) -> Region:
        """The sub-region owned by processor ``proc``."""
        coords = self.grid.coords(proc)
        local = self.region
        for k, g in enumerate(self.dim_map):
            if g is None:
                continue
            lo, hi = self._slabs[k][coords[g]].range(k)
            local = local.slab(k, lo, hi)
        return local

    def owner(self, index: tuple[int, ...]) -> int:
        """Rank of the processor owning a global index."""
        if not self.region.contains(index):
            raise DistributionError(f"index {index} outside {self.region!r}")
        coords = [0] * self.grid.rank
        for k, g in enumerate(self.dim_map):
            if g is None:
                continue
            for c, slab in enumerate(self._slabs[k]):
                lo, hi = slab.range(k)
                if lo <= index[k] <= hi:
                    coords[g] = c
                    break
        return self.grid.proc(tuple(coords))

    def neighbors_along(self, proc: int, array_dim: int) -> tuple[int | None, int | None]:
        """(predecessor, successor) processor ranks along an array dimension.

        Returns ``(None, None)`` when the dimension is not distributed.
        """
        g = self.dim_map[array_dim]
        if g is None:
            return (None, None)
        return (
            self.grid.neighbor(proc, g, -1),
            self.grid.neighbor(proc, g, +1),
        )

    def check_balanced(self) -> float:
        """Return max/min local size ratio (1.0 = perfectly balanced)."""
        sizes = [max(1, self.local_region(p).size) for p in self.grid]
        return max(sizes) / min(sizes)

    def __repr__(self) -> str:
        return f"BlockMap({self.region!r} over {self.grid!r} via {self.dim_map})"
