"""Whole-program simulation: run a benchmark's phase profile end to end.

Fig. 7's whole-program bars are *composed* from per-phase times
(:mod:`repro.experiments.fig7_pipeline_speedup`).  This module provides the
direct alternative: one discrete-event machine executes every phase of a
:class:`~repro.models.amdahl.ProgramProfile` in sequence — parallel phases
with halo exchanges, wavefront phases with the naive or pipelined message
pattern, serial phases as a reduce-to-root + broadcast — so phase skew,
barrier costs and pipeline drain are all priced by the simulator instead of
assumed away.  The test suite cross-checks it against the composition: they
agree to within the barrier/skew costs that only the direct simulation sees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.errors import MachineError
from repro.machine.collectives import allreduce
from repro.machine.comm import Endpoint
from repro.machine.params import MachineParams
from repro.machine.simulator import Machine, RunResult
from repro.models.amdahl import Phase, PhaseKind, ProgramProfile

#: Tag offset per phase so phases never cross-match messages.
_PHASE_TAG_STRIDE = 1000


@dataclass(frozen=True)
class WavefrontSpec:
    """How one wavefront phase runs: geometry + pipeline block size.

    ``rows``/``cols`` define the swept data space; ``boundary_rows`` the
    per-column boundary traffic (the model's ``m``); ``block_size`` the
    pipeline chunk width (``None`` means naive/non-pipelined execution).
    """

    rows: int
    cols: int
    boundary_rows: int = 1
    block_size: int | None = None


@dataclass(frozen=True)
class ProgramRunResult:
    """Outcome of one whole-program simulation."""

    run: RunResult
    profile: ProgramProfile
    n_procs: int
    pipelined: bool

    @property
    def total_time(self) -> float:
        return self.run.total_time


def optimal_spec(
    phase: Phase,
    params: MachineParams,
    n_procs: int,
    rows: int,
    cols: int,
    boundary_rows: int = 1,
) -> WavefrontSpec:
    """A pipelined spec at Model2's optimum for this phase's element cost."""
    from repro.models.pipeline_model import model2  # late: layering

    if n_procs < 2:
        return WavefrontSpec(rows, cols, boundary_rows, cols)  # nothing to pipeline
    work = phase.work / max(1.0, rows * cols)
    import dataclasses

    scaled = dataclasses.replace(
        params, alpha=params.alpha / work, beta=params.beta / work
    )
    b = model2(scaled, rows, n_procs, boundary_rows=boundary_rows, cols=cols)
    return WavefrontSpec(rows, cols, boundary_rows, b.optimal_block_size())


def simulate_program(
    profile: ProgramProfile,
    params: MachineParams,
    n_procs: int,
    wavefront_specs: dict[str, WavefrontSpec],
    halo_elements: int | None = None,
) -> ProgramRunResult:
    """Run the whole profile on one simulated machine.

    ``wavefront_specs`` maps each WAVEFRONT phase name to its geometry; a
    spec with ``block_size=None`` runs that phase naively (the Fig. 4(a)
    pattern).  ``halo_elements`` is the per-neighbour halo message size of
    parallel phases (default: the square root of the profile's mean phase
    work, a region-width proxy).
    """
    if n_procs < 1:
        raise MachineError(f"n_procs must be >= 1, got {n_procs}")
    for phase in profile.phases:
        if phase.kind is PhaseKind.WAVEFRONT and phase.name not in wavefront_specs:
            raise MachineError(f"no WavefrontSpec for wavefront phase {phase.name!r}")
    if halo_elements is None:
        mean_work = profile.total_work() / max(1, len(profile.phases))
        halo_elements = max(1, int(mean_work ** 0.5))

    machine = Machine(params, n_procs)
    pipelined = any(
        spec.block_size is not None for spec in wavefront_specs.values()
    )

    def run_parallel(ep: Endpoint, phase: Phase, tag: int) -> Generator:
        if n_procs > 1:
            up = ep.rank - 1 if ep.rank > 0 else None
            down = ep.rank + 1 if ep.rank + 1 < n_procs else None
            if up is not None:
                ep.send(up, size=halo_elements, tag=tag)
            if down is not None:
                ep.send(down, size=halo_elements, tag=tag)
            if up is not None:
                yield from ep.recv(up, tag=tag)
            if down is not None:
                yield from ep.recv(down, tag=tag)
        yield from ep.compute(phase.work / n_procs)

    def run_serial(ep: Endpoint, phase: Phase, tag: int) -> Generator:
        # Root gathers (a scalar reduce), does the serial work, result is
        # shared back — the classic convergence-test pattern.
        yield from allreduce(ep, n_procs, 0.0, op=max, size=1, tag=tag)
        if ep.rank == 0:
            yield from ep.compute(phase.work)

    def run_wavefront(ep: Endpoint, phase: Phase, tag: int) -> Generator:
        spec = wavefront_specs[phase.name]
        work_per_element = phase.work / max(1.0, spec.rows * spec.cols)
        local_rows = spec.rows // n_procs + (1 if ep.rank < spec.rows % n_procs else 0)
        width = spec.cols if spec.block_size is None else spec.block_size
        chunks = -(-spec.cols // width)
        pred = ep.rank - 1 if ep.rank > 0 else None
        succ = ep.rank + 1 if ep.rank + 1 < n_procs else None
        done = 0
        for k in range(chunks):
            chunk_cols = min(width, spec.cols - done)
            done += chunk_cols
            if pred is not None:
                yield from ep.recv(pred, tag=tag + k + 1)
            yield from ep.compute(local_rows * chunk_cols * work_per_element)
            if succ is not None:
                ep.send(
                    succ,
                    size=max(1, spec.boundary_rows * chunk_cols),
                    tag=tag + k + 1,
                )

    def body(ep: Endpoint) -> Generator:
        for index, phase in enumerate(profile.phases):
            tag = -(index + 1) * _PHASE_TAG_STRIDE
            for _ in range(phase.repeats):
                if phase.kind is PhaseKind.PARALLEL:
                    yield from run_parallel(ep, phase, tag)
                elif phase.kind is PhaseKind.SERIAL:
                    yield from run_serial(ep, phase, tag)
                else:
                    yield from run_wavefront(ep, phase, tag)

    for rank in range(n_procs):
        machine.spawn(body, rank)
    run = machine.run()
    return ProgramRunResult(run, profile, n_procs, pipelined)
