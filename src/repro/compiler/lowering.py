"""Lowering: from a checked scan block to an executable loop-nest program.

The result of compilation is a :class:`CompiledScan`:

* ``hoisted`` — the parallel operators (reductions, floods) pulled out of the
  block into temporary arrays, to be evaluated *before* the nest runs
  (Section 3.2's "all parallel operators except shift are pulled out of scan
  blocks and assigned to temporary arrays");
* ``statements`` — the body statements after substituting hoisted temporaries;
* ``loops`` — the derived loop structure (order, traversal signs, per-dimension
  parallelism classes);
* ``wsv``/``dependences`` — the analysis artifacts, kept for diagnostics,
  the programmer-facing performance model, and the experiments.

A ``CompiledScan`` is engine-agnostic: the scalar oracle, the vectorised
sequential runtime and the distributed machine executor all consume it.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.compiler.legality import check_scan_block
from repro.compiler.loopstruct import LoopStructure, derive_loop_structure
from repro.compiler.udv import Dependence, constraint_vectors, extract_dependences, true_vectors
from repro.compiler.wsv import WSV, classify, wsv_of
from repro.zpl.arrays import ZArray
from repro.zpl.expr import Node, ParallelOp, Ref
from repro.zpl.program import eager_reader
from repro.zpl.regions import Region
from repro.zpl.scan import ScanBlock
from repro.zpl.statements import Assign


@dataclass(frozen=True)
class HoistedTemp:
    """One parallel operator pulled out of the block.

    At execution time, ``expr`` is evaluated eagerly over ``region`` (with the
    values the arrays hold at block entry) and stored into ``temp``.
    """

    temp: ZArray
    expr: ParallelOp
    region: Region

    def evaluate(self) -> None:
        """Compute the temporary's values (ordinary array semantics)."""
        values = self.expr.evaluate(self.region, eager_reader)
        self.temp.write(self.region, np.broadcast_to(values, self.region.shape))


@dataclass(frozen=True)
class CompiledScan:
    """A scan block after legality checking, analysis and lowering."""

    region: Region
    statements: tuple[Assign, ...]
    hoisted: tuple[HoistedTemp, ...]
    loops: LoopStructure
    wsv: WSV
    dependences: tuple[Dependence, ...]
    name: str | None = None
    #: Arrays demoted to per-iteration buffers by array contraction
    #: (:mod:`repro.compiler.contraction`); executors need not keep their
    #: global storage up to date.
    contracted: tuple[ZArray, ...] = ()

    def is_contracted(self, array: ZArray) -> bool:
        """True when ``array`` was contracted away (no global stores needed)."""
        return any(array is a for a in self.contracted)

    @property
    def rank(self) -> int:
        return self.region.rank

    def written_arrays(self) -> tuple[ZArray, ...]:
        """Arrays assigned by the lowered body, in first-write order."""
        seen: list[ZArray] = []
        for stmt in self.statements:
            if not any(stmt.target is a for a in seen):
                seen.append(stmt.target)
        return tuple(seen)

    def read_arrays(self) -> tuple[ZArray, ...]:
        """Arrays read by the lowered body (hoisted temps included)."""
        seen: list[ZArray] = []
        for stmt in self.statements:
            for ref in stmt.expr.refs():
                if not any(ref.array is a for a in seen):
                    seen.append(ref.array)
        return tuple(seen)

    def prepare(self) -> None:
        """Evaluate every hoisted parallel operator (call before any engine)."""
        for temp in self.hoisted:
            temp.evaluate()

    def __repr__(self) -> str:
        label = self.name or "scan"
        return (
            f"CompiledScan({label}, wsv={self.wsv!r}, loops={self.loops!r}, "
            f"{len(self.statements)} stmts, {len(self.hoisted)} hoisted)"
        )


def _hoist_parallel_ops(
    statements: Sequence[Assign], region: Region
) -> tuple[tuple[Assign, ...], tuple[HoistedTemp, ...]]:
    """Replace every parallel-operator node with a reference to a fresh temp."""
    hoisted: list[HoistedTemp] = []
    lowered: list[Assign] = []
    for stmt in statements:
        ops = list(stmt.expr.parallel_ops())
        if not ops:
            lowered.append(stmt)
            continue
        mapping: dict[Node, Node] = {}
        for k, op in enumerate(ops):
            temp = ZArray(region, name=f"%hoist{len(hoisted)}")
            hoisted.append(HoistedTemp(temp, op, region))
            mapping[op] = Ref(temp)
        lowered.append(
            Assign(
                stmt.target,
                stmt.expr.substitute(mapping),
                stmt.region,
                mask=stmt.mask,
                span=stmt.span,
            )
        )
    return tuple(lowered), tuple(hoisted)


def _pass_span(tracer, name: str):
    """A compile-pass timing span; tracers are duck-typed (see repro.obs)."""
    if tracer is not None and tracer.enabled:
        return tracer.span(name, cat="compile")
    return nullcontext()


def compile_scan(block: ScanBlock, tracer=None) -> CompiledScan:
    """The full pipeline: legality, WSV, dependences, loop structure, lowering.

    ``tracer`` (an optional :class:`repro.obs.Tracer`) records one span per
    compiler pass, so end-to-end traces attribute zpl→plan time too.
    """
    with _pass_span(tracer, "compile.legality"):
        check_scan_block(block)  # conditions (i), (iii), (iv), (v)
    region = block.region
    rank = block.rank

    with _pass_span(tracer, "compile.hoist"):
        statements, hoisted = _hoist_parallel_ops(block.statements, region)
    with _pass_span(tracer, "compile.udv"):
        deps = extract_dependences(statements)
    with _pass_span(tracer, "compile.loops"):
        classes = classify(true_vectors(deps), rank)
        loops = derive_loop_structure(constraint_vectors(deps), classes, rank)  # (ii)
    with _pass_span(tracer, "compile.wsv"):
        summary = wsv_of(block.primed_directions(), rank=rank)
    return CompiledScan(
        region=region,
        statements=statements,
        hoisted=hoisted,
        loops=loops,
        wsv=summary,
        dependences=deps,
        name=block.name,
    )


def compile_statements(
    statements: Sequence[Assign], name: str | None = None, tracer=None
) -> CompiledScan:
    """Compile an ordinary (non-scan) fused statement group.

    This is the path the cache experiment uses: fusing plain array statements
    into one loop nest, with anti-dependences (not primes) constraining the
    traversal, exactly as in the paper's Fig. 3(a-c).
    """
    if not statements:
        raise ValueError("cannot compile an empty statement group")
    region = statements[0].region
    rank = region.rank
    for stmt in statements:
        if stmt.region != region:
            raise ValueError(
                "compile_statements requires a common covering region; use "
                "repro.compiler.fusion to partition mixed statement lists"
            )
        if stmt.expr.has_prime():
            raise ValueError("primed references require a scan block")
    with _pass_span(tracer, "compile.hoist"):
        lowered, hoisted = _hoist_parallel_ops(statements, region)
    with _pass_span(tracer, "compile.udv"):
        deps = extract_dependences(lowered, primed_allowed=False)
    with _pass_span(tracer, "compile.loops"):
        classes = classify(true_vectors(deps), rank)
        loops = derive_loop_structure(constraint_vectors(deps), classes, rank)
    return CompiledScan(
        region=region,
        statements=lowered,
        hoisted=hoisted,
        loops=loops,
        wsv=wsv_of((), rank=rank),
        dependences=deps,
        name=name,
    )
