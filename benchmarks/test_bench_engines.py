"""Ablation: execution-engine throughput (vectorised vs scalar oracle).

Quantifies the cost structure the HPC guides prescribe: keep the carried
loop in Python, vectorise the parallel dimensions with numpy.  The scalar
oracle exists for correctness, not speed — this bench records the gap.
"""

import numpy as np

from repro import zpl
from repro.compiler import compile_scan, contract
from repro.runtime import execute_loopnest, execute_vectorized


def _tomcatv(n):
    """The Fig. 2(b) fragment with random well-conditioned inputs."""
    rng = np.random.default_rng(99)
    base = zpl.Region.square(1, n)
    arrays = []
    named = {}
    for name in ("aa", "d", "dd", "rx", "ry", "r"):
        arr = zpl.ZArray(base, name=name)
        arr.load(rng.uniform(0.5, 1.5, size=base.shape))
        arrays.append(arr)
        named[name] = arr
    named["dd"].load(rng.uniform(3.0, 4.0, size=base.shape))
    aa, d, dd, rx, ry, r = (named[k] for k in ("aa", "d", "dd", "rx", "ry", "r"))
    with zpl.covering(zpl.Region.of((2, n - 2), (2, n - 1))):
        with zpl.scan(name="tomcatv", execute=False) as block:
            r[...] = aa * (d.p @ zpl.NORTH)
            d[...] = 1.0 / (dd - (aa @ zpl.NORTH) * r)
            rx[...] = rx - (rx.p @ zpl.NORTH) * r
            ry[...] = ry - (ry.p @ zpl.NORTH) * r
    return compile_scan(block), arrays


def test_vectorized_tomcatv_n128(bench):
    compiled, arrays = _tomcatv(128)
    snap = [a._data.copy() for a in arrays]

    def run():
        for a, s in zip(arrays, snap):
            a._data[...] = s
        execute_vectorized(compiled)

    bench(run)


def test_scalar_oracle_tomcatv_n24(bench):
    # Deliberately small: the oracle is O(elements x refs) Python work.
    compiled, arrays = _tomcatv(24)
    snap = [a._data.copy() for a in arrays]

    def run():
        for a, s in zip(arrays, snap):
            a._data[...] = s
        execute_loopnest(compiled)

    bench(run)


def test_vectorized_with_contraction(bench):
    compiled, arrays = _tomcatv(128)
    r = arrays[-1]
    contracted = contract(compiled, [r])
    snap = [a._data.copy() for a in arrays]

    def run():
        for a, s in zip(arrays, snap):
            a._data[...] = s
        execute_vectorized(contracted)

    bench(run)


def test_eager_stencil_throughput(bench):
    n = 256
    a = zpl.from_numpy(np.ones((n, n)), base=1, name="a")
    b = zpl.from_numpy(np.ones((n, n)), base=1, name="b")
    inner = zpl.Region.square(2, n - 1)

    def run():
        with zpl.covering(inner):
            a[...] = (b @ zpl.NORTH + b @ zpl.SOUTH + b @ zpl.WEST + b @ zpl.EAST) / 4.0

    bench(run)
