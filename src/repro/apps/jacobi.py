"""Jacobi iteration: the paper's non-wavefront example (Section 2.1).

Included for two reasons: it is the four-point stencil the paper uses to
introduce the ``@`` operator, and it demonstrates that the extensions "have
no impact on the rest of the language" — an ordinary array program runs
unchanged, fully parallel, with no scan blocks anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import zpl
from repro.zpl import EAST, NORTH, SOUTH, WEST, Region, ZArray


@dataclass
class JacobiState:
    """The iterate and its scratch copy over ``[1..n, 1..n]``."""

    n: int
    a: ZArray
    b: ZArray
    history: list[float] = field(default_factory=list)

    @property
    def interior(self) -> Region:
        return Region.square(2, self.n - 1)


def build(n: int, hot_edge: float = 1.0) -> JacobiState:
    """A Laplace problem: one hot boundary edge, cold interior."""
    base = Region.square(1, n)
    a = zpl.zeros(base, name="a")
    b = zpl.zeros(base, name="b")
    top = Region.of((1, 1), (1, n))
    a.write(top, hot_edge)
    b.write(top, hot_edge)
    return JacobiState(n=n, a=a, b=b)


def step(state: JacobiState) -> float:
    """One Jacobi sweep; returns the max change."""
    a, b = state.a, state.b
    with zpl.covering(state.interior):
        b[...] = (a @ NORTH + a @ SOUTH + a @ WEST + a @ EAST) / 4.0
    delta = float(
        np.abs(b.read(state.interior) - a.read(state.interior)).max()
    )
    a.write(state.interior, b.read(state.interior))
    state.history.append(delta)
    return delta


def solve(state: JacobiState, tol: float = 1e-4, max_iters: int = 10_000) -> int:
    """Iterate to convergence; returns the iteration count."""
    for k in range(1, max_iters + 1):
        if step(state) < tol:
            return k
    return max_iters
