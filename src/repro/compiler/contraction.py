"""Array contraction (paper Section 2.1, after Lewis, Lin & Snyder PLDI'98).

Array languages force scalars that carry values between statements to be
promoted to full arrays — the Tomcatv fragment's ``r`` is the canonical
example.  Once statements are fused into a single loop nest, such an array is
only ever read at the *same iteration point* where it was just written, so its
storage can be **contracted** to a per-iteration buffer: no global loads or
stores remain.  The paper notes this compiler technique eliminates the
promotion overhead; the uniprocessor cache study (Fig. 6) and the vectorised
runtime both honour the contraction marker.

An array is contractible within a compiled group iff:

* it is written by the group,
* every read of it in the group is unprimed with a zero shift (reads of the
  value produced at the current iteration point),
* the caller asserts it is dead after the group (the embedded DSL cannot see
  the future, so liveness is an explicit promise).
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.errors import CompilationError
from repro.compiler.lowering import CompiledScan
from repro.zpl.arrays import ZArray


def contractible(compiled: CompiledScan, array: ZArray) -> bool:
    """True when ``array`` may be contracted within ``compiled``."""
    if not any(array is a for a in compiled.written_arrays()):
        return False
    for stmt in compiled.statements:
        if stmt.target is array and stmt.mask is not None:
            # Masked-out points keep their *previous* value, which a
            # per-iteration buffer cannot supply.
            return False
        for ref in stmt.expr.refs():
            if ref.array is array and (ref.primed or not ref.offset.is_zero()):
                return False
    return True


def contract(compiled: CompiledScan, arrays: Sequence[ZArray]) -> CompiledScan:
    """Mark ``arrays`` as contracted, validating contractibility.

    Raises :class:`CompilationError` when any array does not qualify.
    """
    for array in arrays:
        if not contractible(compiled, array):
            name = array.name or "<array>"
            raise CompilationError(
                f"array {name!r} is not contractible: it must be written by "
                f"the group and only read unprimed at zero shift"
            )
    merged = list(compiled.contracted)
    for array in arrays:
        if not any(array is a for a in merged):
            merged.append(array)
    return dataclasses.replace(compiled, contracted=tuple(merged))
