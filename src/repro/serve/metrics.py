"""Per-request metrics and the ``/metrics`` snapshot for :mod:`repro.serve`.

The server is single-event-loop, so plain counters suffice; the only
cross-thread writer is the dispatcher's compute future resolution, which
also runs on the loop.  Latency reservoirs are bounded deques — a
long-running server reports recent behaviour, not its whole life.

Alongside the counters the server records :mod:`repro.obs` spans:

* ``serve_request`` (cat ``"serve"``) — one per request, end-to-end,
  with ``id``/``kind``/``status``/``batch``/``queue_ms``/``compute_ms``;
* ``serve_batch`` (cat ``"compute"``) — one per dispatched batch with
  ``batch``/``items``/``kind``.

``python -m repro.obs summarize`` renders these into the per-request
latency-breakdown table (see :func:`repro.obs.phases.format_serve_report`).
"""

from __future__ import annotations

import time
from collections import deque


def percentile(values: list[float], q: float) -> float:
    """Linear-interpolated percentile of an unsorted sample (q in [0, 100])."""
    if not values:
        return 0.0
    data = sorted(values)
    if len(data) == 1:
        return data[0]
    rank = (q / 100.0) * (len(data) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(data) - 1)
    frac = rank - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


class ServeMetrics:
    """Counters + bounded latency reservoirs, snapshotted by ``/metrics``."""

    RESERVOIR = 8192

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self.started = clock()
        self.received = 0
        self.completed = 0
        self.rejected = 0
        self.timeouts = 0
        self.bad_requests = 0
        self.failed = 0
        self.batches = 0
        self.batched_items = 0
        self.queue_depth = 0
        self.queue_peak = 0
        #: batch size -> number of dispatches of that size
        self.batch_sizes: dict[int, int] = {}
        self._e2e = deque(maxlen=self.RESERVOIR)
        self._queue_wait = deque(maxlen=self.RESERVOIR)
        self._compute = deque(maxlen=self.RESERVOIR)

    # -- event hooks ---------------------------------------------------------
    def on_received(self) -> None:
        self.received += 1

    def on_enqueued(self, depth: int) -> None:
        self.queue_depth = depth
        self.queue_peak = max(self.queue_peak, depth)

    def on_dequeued(self, depth: int) -> None:
        self.queue_depth = depth

    def on_rejected(self) -> None:
        self.rejected += 1

    def on_bad_request(self) -> None:
        self.bad_requests += 1

    def on_timeout(self) -> None:
        self.timeouts += 1

    def on_failed(self) -> None:
        self.failed += 1

    def on_batch(self, size: int) -> None:
        self.batches += 1
        self.batched_items += size
        self.batch_sizes[size] = self.batch_sizes.get(size, 0) + 1

    def on_completed(self, e2e: float, queue_wait: float, compute: float) -> None:
        self.completed += 1
        self._e2e.append(e2e)
        self._queue_wait.append(queue_wait)
        self._compute.append(compute)

    # -- snapshot ------------------------------------------------------------
    def snapshot(self) -> dict:
        """The ``/metrics`` document (JSON-ready, milliseconds for latency)."""
        uptime = max(self._clock() - self.started, 1e-9)
        e2e = list(self._e2e)
        attempted = self.received - self.bad_requests
        return {
            "uptime_seconds": uptime,
            "requests": {
                "received": self.received,
                "completed": self.completed,
                "rejected": self.rejected,
                "timeouts": self.timeouts,
                "bad_requests": self.bad_requests,
                "failed": self.failed,
            },
            "throughput_rps": self.completed / uptime,
            "rejection_rate": self.rejected / attempted if attempted else 0.0,
            "latency_ms": {
                "p50": percentile(e2e, 50) * 1e3,
                "p95": percentile(e2e, 95) * 1e3,
                "p99": percentile(e2e, 99) * 1e3,
                "mean": (sum(e2e) / len(e2e) * 1e3) if e2e else 0.0,
            },
            "queue_wait_ms": {
                "p50": percentile(list(self._queue_wait), 50) * 1e3,
                "p99": percentile(list(self._queue_wait), 99) * 1e3,
            },
            "compute_ms": {
                "p50": percentile(list(self._compute), 50) * 1e3,
                "p99": percentile(list(self._compute), 99) * 1e3,
            },
            "queue": {"depth": self.queue_depth, "peak": self.queue_peak},
            "batches": {
                "dispatched": self.batches,
                "items": self.batched_items,
                "mean_size": self.batched_items / self.batches if self.batches else 0.0,
                "histogram": {str(k): v for k, v in sorted(self.batch_sizes.items())},
            },
        }
