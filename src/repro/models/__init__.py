"""Analytic performance models: Model1/Model2 block-size analysis + Amdahl."""

from repro.models.pipeline_model import PipelineModel, model1, model2
from repro.models.speedup import (
    speedup_vs_block_size,
    model_comparison,
    pipelined_speedup_vs_procs,
)
from repro.models.amdahl import Phase, PhaseKind, ProgramProfile
from repro.models.tuning import (
    TuningResult,
    make_simulated_probe,
    select_static,
    select_profiled,
    select_dynamic,
)

__all__ = [
    "PipelineModel",
    "model1",
    "model2",
    "speedup_vs_block_size",
    "model_comparison",
    "pipelined_speedup_vs_procs",
    "Phase",
    "PhaseKind",
    "ProgramProfile",
    "TuningResult",
    "make_simulated_probe",
    "select_static",
    "select_profiled",
    "select_dynamic",
]
