"""Tests for the five statically checked scan-block legality conditions."""

import pytest

from repro import zpl
from repro.errors import (
    LegalityError,
    OverconstrainedScanError,
    PrimedOperandError,
    RankMismatchError,
    RegionMismatchError,
)


N = 6
BASE = zpl.Region.square(1, N)
R = zpl.Region.of((2, N), (1, N))


def record(body):
    """Record a scan block via the callable ``body(arrays) -> None``."""
    a = zpl.ones(BASE, name="a")
    b = zpl.ones(BASE, name="b")
    with zpl.covering(R):
        with zpl.scan(execute=False) as block:
            body(a, b)
    return block


class TestConditionI:
    def test_primed_array_must_be_defined(self):
        # 'b' is primed but never assigned in the block.
        block = record(lambda a, b: a.__setitem__(..., b.p @ zpl.NORTH))
        with pytest.raises(PrimedOperandError, match="never\\s+defines"):
            block.compile()

    def test_primed_array_defined_later_is_fine(self):
        def body(a, b):
            a[...] = b.p @ zpl.NORTH
            b[...] = a + 1.0

        record(body).compile()


class TestConditionII:
    def test_north_south_overconstrained(self):
        def body(a, b):
            a[...] = (a.p @ zpl.NORTH) + (a.p @ zpl.SOUTH)

        with pytest.raises(OverconstrainedScanError):
            record(body).compile()

    def test_example4_overconstrained(self):
        def body(a, b):
            a[...] = ((a.p @ zpl.WEST) + (a.p @ zpl.EAST)) / 2.0

        with pytest.raises(OverconstrainedScanError):
            record(body).compile()

    def test_example3_legal(self):
        def body(a, b):
            a[...] = ((a.p @ (-1, 0)) + (a.p @ (1, 1))) / 2.0

        record(body).compile()


class TestConditionIII:
    def test_rank_mismatch(self):
        line = zpl.ones(zpl.Region.of((1, N)), name="line")
        a = zpl.ones(BASE, name="a")
        with pytest.raises(RankMismatchError):
            with zpl.covering(R):
                with zpl.scan(execute=False) as block:
                    a[...] = a.p @ zpl.NORTH
                    line[zpl.Region.of((2, N))] = line.p @ (-1,)
            block.compile()


class TestConditionIV:
    def test_region_mismatch(self):
        other = zpl.Region.of((3, N), (1, N))

        def body(a, b):
            a[...] = a.p @ zpl.NORTH
            b[other] = b.p @ zpl.NORTH

        with pytest.raises(RegionMismatchError):
            record(body).compile()


class TestConditionV:
    def test_primed_reduction_operand(self):
        def body(a, b):
            a[...] = zpl.zsum(a.p @ zpl.NORTH)

        with pytest.raises(PrimedOperandError, match="parallel operator"):
            record(body).compile()

    def test_reduction_of_block_written_array(self):
        def body(a, b):
            a[...] = a.p @ zpl.NORTH
            b[...] = zpl.zsum(a)  # 'a' is written in the block: cannot hoist

        with pytest.raises(PrimedOperandError, match="cannot be hoisted"):
            record(body).compile()

    def test_reduction_of_outside_array_ok(self):
        def body(a, b):
            a[...] = (a.p @ zpl.NORTH) + zpl.zsum(b)

        compiled = record(body).compile()
        assert len(compiled.hoisted) == 1


class TestAdditionalChecks:
    def test_empty_block(self):
        with zpl.scan(execute=False) as block:
            pass
        with pytest.raises(LegalityError, match="empty|no statements"):
            block.compile()

    def test_unshifted_prime_rejected(self):
        def body(a, b):
            a[...] = a.p + 1.0

        with pytest.raises(PrimedOperandError, match="without a shift"):
            record(body).compile()
