# Gauss-Seidel relaxation under a mask: primed north/west reads take the
# new values the wave already produced, south/east reads take old values.
#! arrays: u[1..63, 1..63] = 0.5, f[1..63, 1..63] = 0.1, wet[1..63, 1..63] = 1
#! constants: n = 62
[2..n, 2..n with wet] scan
  u := 0.25 * (u'@north + u'@west + u@south + u@east - f);
end;
