"""Tests for phase analytics and residual tables (:mod:`repro.obs.phases`).

The synthetic-trace tests pin the fill/steady/drain arithmetic on
hand-checkable numbers; the capture tests run the virtual-clock simulator
end-to-end, where the model residual must be exactly zero — the simulator
*is* the model.
"""

import pytest

from repro.obs.capture import capture_simulator
from repro.obs.phases import (
    analyze_phases,
    format_phase_report,
    format_residuals,
    residual_table,
)
from repro.obs.trace import Trace, Tracer


def _synthetic() -> Trace:
    """Two workers: P0 computes [0,10] and [10,20]; P1 waits [0,11], then
    computes [11,21] and [21,31].  Fill ends at 11, drain starts at 20."""
    tracer = Tracer()
    tracer.add_span("startup", "setup", -5.0, -1.0, proc=0)  # outside window
    tracer.add_span("compute", "compute", 0.0, 10.0, proc=0, block=0)
    tracer.add_span("compute", "compute", 10.0, 20.0, proc=0, block=1)
    tracer.add_span("recv_wait", "comm", 0.0, 11.0, proc=1, block=0)
    tracer.add_span("compute", "compute", 11.0, 21.0, proc=1, block=0)
    tracer.add_span("compute", "compute", 21.0, 31.0, proc=1, block=1)
    return Trace.from_tracer(tracer, clock="virtual", meta={"n_procs": 2})


class TestAnalyzePhases:
    def test_synthetic_split(self):
        report = analyze_phases(_synthetic())
        assert report.t0 == 0.0 and report.t_end == 31.0
        assert report.fill == pytest.approx(11.0)
        assert report.steady == pytest.approx(9.0)
        assert report.drain == pytest.approx(11.0)

    def test_phases_partition_window(self):
        report = analyze_phases(_synthetic())
        assert report.coverage == pytest.approx(1.0)
        assert report.fill + report.steady + report.drain == pytest.approx(
            report.wall
        )

    def test_setup_spans_outside_window(self):
        # The startup span at t=-5 must not stretch the pipeline window.
        assert analyze_phases(_synthetic()).t0 == 0.0

    def test_worker_stats(self):
        report = analyze_phases(_synthetic())
        p0, p1 = report.workers
        assert p0.busy == pytest.approx(20.0) and p0.wait == 0.0
        assert p1.busy == pytest.approx(20.0)
        assert p1.wait == pytest.approx(11.0)
        assert p0.utilization == pytest.approx(20.0 / 31.0)
        # P1 finishes last: its wait is the critical-path wait.
        assert report.critical_path_wait == pytest.approx(11.0)

    def test_requires_compute_spans(self):
        with pytest.raises(ValueError, match="compute"):
            analyze_phases(Trace(clock="wall"))

    def test_simulator_capture_full_coverage(self):
        _, trace = capture_simulator(n=48, procs=4)
        report = analyze_phases(trace)
        assert len(report.workers) == 4
        # Acceptance: phases cover >= 95% of the traced window (they
        # partition it, so exactly 100%).
        assert report.coverage == pytest.approx(1.0)
        assert 0.0 < report.utilization <= 1.0
        assert report.fill > 0 and report.drain > 0

    def test_format_contains_key_lines(self):
        text = format_phase_report(analyze_phases(_synthetic()), title="T")
        assert text.startswith("T")
        for token in ("fill", "steady", "drain", "phase coverage", "P0"):
            assert token in text


class TestResiduals:
    def test_simulator_residuals_are_zero(self):
        # The virtual clock charges exactly (rows/p)·w per block and
        # exactly α+β·m·w per token: the model residual must vanish.
        _, trace = capture_simulator(n=48, procs=4)
        rows = residual_table(trace)
        assert rows, "expected per-block residual rows"
        for r in rows:
            assert r.n_spans >= 1
            assert r.width >= 1
            assert r.measured_compute == pytest.approx(r.predicted_compute)
            assert r.residual == pytest.approx(0.0)
            assert r.ratio == pytest.approx(1.0)

    def test_simulator_wait_matches_token_cost(self):
        _, trace = capture_simulator(n=48, procs=4)
        # Steady-state interior blocks: the charged receive is exactly the
        # model's α+β·m·w (fill-blocked waits are larger, so compare the
        # minimum-wait block).
        rows = [r for r in residual_table(trace) if r.measured_wait > 0]
        best = min(rows, key=lambda r: r.measured_wait - r.predicted_comm)
        assert best.measured_wait >= best.predicted_comm - 1e-9

    def test_blocks_cover_all_columns(self):
        _, trace = capture_simulator(n=48, procs=4)
        rows = residual_table(trace)
        assert sum(r.width for r in rows) == trace.meta["cols"]

    def test_format_residuals_mentions_eq1(self):
        _, trace = capture_simulator(n=48, procs=4)
        text = format_residuals(trace, title="sim")
        assert "Eq.(1)" in text
        assert "block width" in text
        assert "per-stage totals" in text

    def test_unit_fitted_when_model_missing(self):
        _, trace = capture_simulator(n=48, procs=4)
        del trace.meta["model"]
        rows = residual_table(trace)
        # Fitted from the trace itself: unit is exact on the virtual clock.
        assert rows[0].ratio == pytest.approx(1.0)

    def test_naive_schedule_single_block(self):
        _, trace = capture_simulator(n=48, procs=3, schedule="naive")
        report = analyze_phases(trace)
        assert len(report.workers) == 3
        # Naive: no steady state to speak of — fill dominates.
        assert report.fill / report.wall > 0.5
