"""Statement fusion: grouping array statements into single loop nests.

The ZPL compiler "identifies groups of statements that will be implemented as
a single loop nest, essentially performing loop fusion" (Section 3).  Scan
blocks are fused by definition; this module provides the same grouping for
*ordinary* statement sequences, which the uniprocessor cache experiment
(Fig. 6) depends on: the four Tomcatv statements must end up in one loop nest
before loop interchange can recover spatial locality.

The grouping is greedy and order-preserving: a statement joins the current
group when

* it has the same covering region (hence rank) as the group, and
* the combined dependence set still admits a legal loop structure, and
* fusing does not change semantics: if the statement reads an array that the
  group writes (or vice versa) with a *shifted* reference, fusion is only
  kept when the combined UDVs remain satisfiable; array-language semantics
  are preserved by construction because the dependence extractor models
  exactly the old-value/new-value visibility rules.
"""

from __future__ import annotations

from typing import Sequence

from repro.compiler.loopstruct import structure_exists
from repro.compiler.udv import constraint_vectors, extract_dependences
from repro.zpl.statements import Assign


def can_fuse(statements: Sequence[Assign]) -> bool:
    """True when the statements may legally share one loop nest."""
    if not statements:
        return False
    region = statements[0].region
    if any(s.region != region for s in statements):
        return False
    if any(s.expr.has_prime() for s in statements):
        return False
    deps = extract_dependences(statements, primed_allowed=False)
    return structure_exists(constraint_vectors(deps), region.rank)


def fuse_groups(statements: Sequence[Assign]) -> list[list[Assign]]:
    """Partition a statement sequence into maximal fusible groups (greedy)."""
    groups: list[list[Assign]] = []
    for stmt in statements:
        if groups and can_fuse(groups[-1] + [stmt]):
            groups[-1].append(stmt)
        else:
            groups.append([stmt])
    return groups
