"""Trace-driven cache simulation (the Fig. 6 uniprocessor study substrate)."""

from repro.cache.layout import AddressSpace, ArrayPlacement, DEFAULT_PAD
from repro.cache.trace import (
    statement_slots,
    fused_trace,
    per_statement_trace,
    best_locality_structure,
    trace_compiled,
)
from repro.cache.cachesim import (
    CacheResult,
    simulate,
    simulate_direct_mapped,
    simulate_lru,
)
from repro.cache.study import CacheStudyResult, cache_study

__all__ = [
    "AddressSpace",
    "ArrayPlacement",
    "DEFAULT_PAD",
    "statement_slots",
    "fused_trace",
    "per_statement_trace",
    "best_locality_structure",
    "trace_compiled",
    "CacheResult",
    "simulate",
    "simulate_direct_mapped",
    "simulate_lru",
    "CacheStudyResult",
    "cache_study",
]
