"""The ``obs top`` dashboard renderer and polling loop."""

from __future__ import annotations

import io

import pytest

from repro.obs.live.top import _bar, fetch_metrics, render_top, run_top


def _doc(completed=120, busy0=3.0) -> dict:
    return {
        "uptime_seconds": 42.0,
        "throughput_rps": 2.9,
        "requests": {"received": 130, "completed": completed, "failed": 1,
                     "rejected": 4, "timeouts": 0},
        "latency_ms": {"p50": 12.5, "p95": 40.0, "p99": 88.0, "mean": 15.0},
        "queue": {"depth": 3, "peak": 12},
        "batches": {"dispatched": 30, "items": 120, "mean_size": 4.0,
                    "histogram": {"4": 30}},
        "workers": {
            "0": {"busy_seconds": busy0, "blocks_total": 200,
                  "elements_total": 51200, "wait_seconds": 0.4},
            "1": {"busy_seconds": 2.5, "blocks_total": 190,
                  "elements_total": 48640, "wait_seconds": 0.9},
        },
        "model": {"alpha_seconds": 2.1e-4, "beta_seconds_per_element": 3e-8,
                  "unit_seconds": 5e-8, "ratio": 1.02, "drift": False,
                  "samples": 30, "drift_events": 0},
        "flight": {"enabled": True, "written": 900, "dropped": 120,
                   "capacity": 512},
    }


class TestRenderTop:
    def test_all_sections_present(self):
        frame = render_top(_doc())
        assert "repro.serve up" in frame
        assert "req 120 ok / 4 shed" in frame
        assert "p95" in frame and "40.00" in frame
        assert "queue" in frame
        assert "30 dispatched" in frame
        assert "4x30" in frame
        assert "rank" in frame  # worker table header
        assert "model" in frame and "drift" in frame
        assert "[ok]" in frame
        assert "900 events, 120 overwritten" in frame

    def test_drift_flag_rendered(self):
        doc = _doc()
        doc["model"]["drift"] = True
        doc["model"]["ratio"] = 2.4
        assert "[DRIFT]" in render_top(doc)

    def test_rates_from_previous_frame(self):
        prev, cur = _doc(completed=100, busy0=3.0), _doc(completed=110, busy0=3.8)
        frame = render_top(cur, prev, interval=2.0)
        assert "5.0 req/s" in frame  # (110-100)/2
        assert "40%" in frame        # (3.8-3.0)/2 busy fraction for rank 0

    def test_minimal_doc_renders(self):
        frame = render_top({})
        assert "repro.serve up" in frame

    def test_worker_rows_sorted_numerically(self):
        doc = _doc()
        doc["workers"]["10"] = {"busy_seconds": 1.0, "blocks_total": 5,
                                "elements_total": 100}
        frame = render_top(doc)
        rows = [line for line in frame.splitlines()
                if line.strip().split() and line.strip().split()[0].isdigit()]
        ranks = [line.strip().split()[0] for line in rows]
        assert ranks == ["0", "1", "10"]


def test_bar_clamps():
    assert _bar(0.0) == "." * 20
    assert _bar(1.0) == "#" * 20
    assert _bar(7.5) == "#" * 20
    assert len(_bar(0.33)) == 20


class TestRunTop:
    def test_unreachable_server_is_one_line_error(self, capsys):
        rc = run_top("http://127.0.0.1:1", interval=0.01, iterations=1)
        assert rc == 1
        err = capsys.readouterr().err
        assert err.startswith("error: cannot fetch")

    def test_iterations_bound_and_output(self, monkeypatch):
        docs = iter([_doc(completed=10), _doc(completed=20)])
        monkeypatch.setattr(
            "repro.obs.live.top.fetch_metrics", lambda url, timeout=2.0: next(docs)
        )
        out = io.StringIO()
        rc = run_top("http://x", interval=0.0, iterations=2, out=out,
                     clear=False)
        assert rc == 0
        assert out.getvalue().count("repro.serve up") == 2


def test_fetch_metrics_appends_path():
    with pytest.raises(Exception):
        fetch_metrics("http://127.0.0.1:1", timeout=0.1)
