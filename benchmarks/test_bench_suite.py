"""Bench: the wavefront-kernel suite under the pipelined schedule.

One timing per suite kernel (DESIGN.md's "benchmark suite of wavefront
computations"), all at a common size and processor count, so regressions in
the schedule or the DES core show up per-kernel.
"""

import pytest

from repro.apps import suite
from repro.machine import CRAY_T3E, pipelined_wavefront, plan_wavefront
from repro.models import model2

N = 129
P = 8


@pytest.mark.parametrize("entry", suite.SUITE, ids=lambda e: e.name)
def test_suite_kernel_pipelined(bench, entry):
    compiled = entry.build(N)
    plan = plan_wavefront(compiled)
    rows = compiled.region.extent(plan.wavefront_dim)
    cols = (
        compiled.region.extent(plan.chunk_dim)
        if plan.chunk_dim is not None
        else 1
    )
    b = model2(
        CRAY_T3E, rows, P, boundary_rows=max(1, plan.boundary_rows), cols=cols
    ).optimal_block_size()
    outcome = bench(
        pipelined_wavefront,
        compiled,
        CRAY_T3E,
        n_procs=P,
        block_size=b,
        compute_values=False,
    )
    assert outcome.total_time > 0
