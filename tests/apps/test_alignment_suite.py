"""Tests for sequence alignment and the wavefront suite registry."""

import numpy as np
import pytest

from repro.apps import alignment, suite
from repro.machine import pipelined_wavefront, MachineParams
from repro.runtime import execute_loopnest, execute_vectorized, run_and_capture


class TestNeedlemanWunsch:
    def test_identical_sequences(self):
        result = alignment.needleman_wunsch("ACGT", "ACGT")
        assert result.score == 8.0  # 4 matches x 2
        assert result.aligned_a == "ACGT"
        assert result.aligned_b == "ACGT"

    def test_matches_oracle(self):
        cases = [
            ("GATTACA", "GCATGCU"),
            ("AAAA", "AA"),
            ("ACGTACGT", "TGCA"),
            ("A", "T"),
        ]
        for a, b in cases:
            got = alignment.needleman_wunsch(a, b).score
            want = alignment.nw_score_oracle(a, b)
            assert got == pytest.approx(want), (a, b)

    def test_alignment_strings_consistent(self):
        result = alignment.needleman_wunsch("GATTACA", "GCATGCU")
        assert len(result.aligned_a) == len(result.aligned_b)
        assert result.aligned_a.replace("-", "") == "GATTACA"
        assert result.aligned_b.replace("-", "") == "GCATGCU"

    def test_gap_dominated(self):
        result = alignment.needleman_wunsch("AAAA", "AA", gap=1.0)
        assert result.aligned_a == "AAAA"
        assert result.aligned_b.count("-") == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            alignment.needleman_wunsch("", "ACGT")

    def test_scalar_vs_vectorized_engine(self):
        a, b = "ACGGTAC", "ACTTAC"
        s1 = alignment.needleman_wunsch(a, b, engine=execute_vectorized).score
        s2 = alignment.needleman_wunsch(a, b, engine=execute_loopnest).score
        assert s1 == s2


class TestSmithWaterman:
    def test_local_score_nonnegative(self):
        assert alignment.smith_waterman_score("AAAA", "TTTT") == 0.0

    def test_local_finds_substring(self):
        # Perfect local match of length 3 inside noise: score 6.
        score = alignment.smith_waterman_score("TTACGTT", "GGACGGG")
        assert score == 6.0

    def test_local_geq_global(self):
        a, b = "GATTACA", "GCATGCU"
        local = alignment.smith_waterman_score(a, b)
        global_ = alignment.needleman_wunsch(a, b).score
        assert local >= global_


class TestSuite:
    def test_registry_names_unique(self):
        names = [e.name for e in suite.SUITE]
        assert len(names) == len(set(names))

    def test_lookup(self):
        assert suite.get("dp").boundary_rows == 1
        with pytest.raises(KeyError):
            suite.get("nope")

    @pytest.mark.parametrize("entry", suite.SUITE, ids=lambda e: e.name)
    def test_every_entry_compiles_and_runs(self, entry):
        compiled = entry.build(10)
        arrays = list(compiled.written_arrays()) + list(compiled.read_arrays())
        oracle = run_and_capture(execute_loopnest, compiled, arrays)
        fast = run_and_capture(execute_vectorized, compiled, arrays)
        for o, f in zip(oracle, fast):
            np.testing.assert_allclose(f, o, rtol=1e-12)

    @pytest.mark.parametrize("entry", suite.SUITE, ids=lambda e: e.name)
    def test_every_entry_pipelines(self, entry):
        params = MachineParams(name="test", alpha=30.0, beta=1.0)
        compiled = entry.build(12)
        arrays = list(compiled.written_arrays())
        expected = run_and_capture(execute_vectorized, compiled, arrays)
        outcome = pipelined_wavefront(compiled, params, n_procs=3, block_size=4)
        for arr, want in zip(arrays, expected):
            np.testing.assert_allclose(arr._data, want, rtol=1e-12)
        assert outcome.total_time > 0
