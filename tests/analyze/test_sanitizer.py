"""The wavefront race sanitizer on the real multiprocess backend.

Clean pipelined and naive runs (rank-1 chain and rank-2 mesh) must pass the
happens-before checks *and* stay bit-identical to the sequential engine; the
injected early-release token-protocol violation must be detected
deterministically.  Worker counts stay at two, matching the rest of the
parallel suite.
"""

import numpy as np
import pytest

from repro import zpl
from repro.analyze.sanitizer import parse_inject
from repro.compiler import compile_scan
from repro.errors import MachineError, SanitizerError
from repro.parallel import execute
from repro.runtime import execute_vectorized, run_and_capture
from repro.zpl import NORTH, Region
from tests.conftest import record_tomcatv_block


def _single_stream(n=32):
    a = zpl.ZArray(Region.square(1, n), name="a")
    rng = np.random.default_rng(5)
    a.load(rng.uniform(0.2, 1.0, size=(n, n)))
    with zpl.covering(Region.of((2, n), (1, n))):
        with zpl.scan(execute=False) as block:
            a[...] = 0.9 * (a.p @ NORTH) + 0.1
    return compile_scan(block), (a,)


def _assert_sanitized_matches(compiled, arrays, **kwargs):
    oracle = run_and_capture(execute_vectorized, compiled, arrays)
    runs = []

    def engine(c):
        runs.append(execute(c, sanitize=True, **kwargs))

    got = run_and_capture(engine, compiled, arrays)
    for array, want, have in zip(arrays, oracle, got):
        np.testing.assert_array_equal(
            have, want, err_msg=f"array {array.name} diverged under sanitizer"
        )
    return runs[0]


def test_parse_inject():
    assert parse_inject(None) is None
    assert parse_inject("") is None
    assert parse_inject("early-release:1:3") == ("early-release", 1, 3)
    with pytest.raises(SanitizerError, match="expected"):
        parse_inject("late-release:1:3")
    with pytest.raises(SanitizerError, match="integers"):
        parse_inject("early-release:one:3")


def test_clean_pipelined_rank1():
    compiled, arrays = _single_stream()
    run = _assert_sanitized_matches(
        compiled, arrays, grid=2, schedule="pipelined", block=8
    )
    assert run.n_procs == 2 and run.n_chunks > 1


def test_clean_naive_rank1():
    compiled, arrays = _single_stream()
    run = _assert_sanitized_matches(compiled, arrays, grid=2, schedule="naive")
    assert run.schedule == "naive"


def test_clean_pipelined_rank2_mesh():
    # Rank-2 processor grid: two independent chains over the tomcatv block.
    block, arrays = record_tomcatv_block(16)
    run = _assert_sanitized_matches(
        compile_scan(block), arrays, grid=(1, 2), schedule="pipelined", block=4
    )
    assert run.grid_dims == (1, 2)


def test_env_knob_enables_sanitizer(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    compiled, arrays = _single_stream(24)
    oracle = run_and_capture(execute_vectorized, compiled, arrays)
    got = run_and_capture(
        lambda c: execute(c, grid=2, schedule="pipelined", block=6),
        compiled,
        arrays,
    )
    for want, have in zip(oracle, got):
        np.testing.assert_array_equal(have, want)


def test_injected_early_release_detected(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE_INJECT", "early-release:0:0")
    compiled, _ = _single_stream()
    with pytest.raises(SanitizerError, match="wavefront race"):
        execute(compiled, grid=2, schedule="pipelined", block=8, sanitize=True)


def test_injected_mid_pipeline_block_detected(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE_INJECT", "early-release:0:2")
    compiled, _ = _single_stream()
    with pytest.raises(SanitizerError, match="wavefront race"):
        execute(compiled, grid=2, schedule="pipelined", block=8, sanitize=True)


def test_injection_ignored_without_matching_rank(monkeypatch):
    # The fault targets a rank that never sends; the run stays clean.
    monkeypatch.setenv("REPRO_SANITIZE_INJECT", "early-release:7:0")
    compiled, arrays = _single_stream(24)
    _assert_sanitized_matches(
        compiled, arrays, grid=2, schedule="pipelined", block=6
    )


def test_sanitize_incompatible_with_pool():
    from repro.parallel.pool import WorkerPool

    compiled, _ = _single_stream(16)
    with WorkerPool(2) as pool:
        with pytest.raises(MachineError, match="REPRO_SANITIZE"):
            execute(compiled, pool=pool, sanitize=True)
