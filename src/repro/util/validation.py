"""Small argument-validation helpers used across the library.

These raise ``TypeError``/``ValueError`` (not library errors): a failed check
indicates a caller bug at the Python API boundary, not a language-level
legality problem.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

#: Integer types accepted anywhere the library expects an int.
_INT_TYPES = (int, np.integer)


def check_int(value: Any, name: str) -> int:
    """Return ``value`` as a built-in int, or raise ``TypeError``."""
    if isinstance(value, bool) or not isinstance(value, _INT_TYPES):
        raise TypeError(f"{name} must be an integer, got {value!r}")
    return int(value)


def check_positive_int(value: Any, name: str) -> int:
    """Return ``value`` as a positive int (>= 1), or raise."""
    ivalue = check_int(value, name)
    if ivalue < 1:
        raise ValueError(f"{name} must be >= 1, got {ivalue}")
    return ivalue


def check_nonnegative(value: Any, name: str) -> float:
    """Return ``value`` as a non-negative float, or raise."""
    try:
        fvalue = float(value)
    except (TypeError, ValueError):
        raise TypeError(f"{name} must be a number, got {value!r}") from None
    if not np.isfinite(fvalue) or fvalue < 0:
        raise ValueError(f"{name} must be finite and >= 0, got {fvalue}")
    return fvalue


def check_positive(value: Any, name: str) -> float:
    """Return ``value`` as a strictly positive float, or raise."""
    fvalue = check_nonnegative(value, name)
    if fvalue == 0:
        raise ValueError(f"{name} must be > 0, got 0")
    return fvalue


def check_tuple_of_int(values: Sequence[Any], name: str) -> tuple[int, ...]:
    """Return ``values`` as a tuple of ints, or raise."""
    if isinstance(values, (str, bytes)) or not isinstance(
        values, (tuple, list, np.ndarray)
    ):
        raise TypeError(f"{name} must be a sequence of integers, got {values!r}")
    return tuple(check_int(v, f"{name}[{i}]") for i, v in enumerate(values))
