"""Shared plumbing for the experiment modules.

Every experiment module exposes ``run(...) -> <Result>`` where the result
carries the raw series/tables plus a ``report() -> str`` renderer, and a
module-level ``DESCRIPTION``.  The CLI runner (``python -m repro.experiments``)
drives them uniformly; ``quick=True`` shrinks problem sizes for smoke runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.machine.params import CRAY_T3E, SGI_POWERCHALLENGE, MachineParams

#: The two machines of the paper's evaluation.
PAPER_MACHINES: tuple[MachineParams, ...] = (CRAY_T3E, SGI_POWERCHALLENGE)

#: The paper's Tomcatv problem size (SPECfp92 input).
PAPER_N = 257

#: Processor counts used by the Fig. 7 sweeps.
PAPER_PROCS: tuple[int, ...] = (2, 4, 8, 16)


@dataclass(frozen=True)
class ExperimentInfo:
    """Registry entry for the CLI runner."""

    name: str
    description: str
    run: Callable[..., object]


def heading(title: str) -> str:
    """A report section heading."""
    bar = "=" * max(60, len(title))
    return f"{bar}\n{title}\n{bar}"
