"""The expressiveness claim: kernel lines vs explicit-parallel machinery.

The paper's Section 1: "the core of the ASCI SWEEP3D benchmark is 626 lines
of code, only 179 of which are fundamental to the computation.  The remainder
are devoted to tiling, buffer management, and communication."

This library reproduces the comparison with its own artifacts: for each
wavefront application we count (a) the lines of the scan-block kernel — the
code a ZPL programmer writes — and (b) the lines of the explicit machinery
(schedules, distribution, message plumbing) that the language-based approach
renders reusable instead of per-application.  The measured ratio makes the
same point the paper's SWEEP3D numbers do: the fundamental computation is a
small minority of an explicitly parallel implementation.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass

from repro.apps import alignment, simple, sweep3d, tomcatv
from repro.experiments.common import heading
from repro.util.tables import Table

DESCRIPTION = "Expressiveness: scan-block kernel lines vs explicit-parallel machinery"

#: The paper's SWEEP3D line counts.
PAPER_SWEEP3D_TOTAL = 626
PAPER_SWEEP3D_FUNDAMENTAL = 179


def _code_lines(obj: object) -> int:
    """Non-blank, non-comment source lines of a function/module."""
    source = inspect.getsource(obj)  # type: ignore[arg-type]
    count = 0
    in_doc = False
    for raw in source.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith(('"""', "'''")):
            # Toggle docstring state (one-line docstrings toggle twice).
            if in_doc or not (line.endswith(('"""', "'''")) and len(line) > 3):
                in_doc = not in_doc
            continue
        if in_doc:
            continue
        count += 1
    return count


@dataclass(frozen=True)
class LocRow:
    application: str
    kernel_lines: int
    machinery_lines: int

    @property
    def total(self) -> int:
        return self.kernel_lines + self.machinery_lines

    @property
    def fundamental_fraction(self) -> float:
        return self.kernel_lines / self.total


@dataclass(frozen=True)
class LocResult:
    rows: tuple[LocRow, ...]
    machinery_lines: int

    def report(self) -> str:
        table = Table(
            "Kernel vs explicit-parallel machinery (lines of code)",
            ["application", "kernel", "machinery", "total", "fundamental %"],
            precision=1,
        )
        for row in self.rows:
            table.add_row(
                row.application,
                row.kernel_lines,
                row.machinery_lines,
                row.total,
                100.0 * row.fundamental_fraction,
            )
        paper_pct = 100.0 * PAPER_SWEEP3D_FUNDAMENTAL / PAPER_SWEEP3D_TOTAL
        return "\n".join(
            [
                heading("Expressiveness (the paper's SWEEP3D 626/179 claim)"),
                table.render(),
                "",
                f"paper's SWEEP3D: {PAPER_SWEEP3D_FUNDAMENTAL} fundamental of "
                f"{PAPER_SWEEP3D_TOTAL} total lines ({paper_pct:.0f}%)",
                "the machinery column counts this library's reusable pipelined-"
                "execution plumbing (schedules + comm + distribution), which an "
                "explicit MPI implementation re-writes per application.",
            ]
        )


def run(quick: bool = False) -> LocResult:
    """Count kernel and machinery lines from the actual sources."""
    from repro.machine import comm, distribution, schedules

    machinery = (
        _code_lines(schedules) + _code_lines(comm) + _code_lines(distribution)
    )
    kernels = (
        ("tomcatv-solves", (tomcatv.record_forward_block, tomcatv.record_backward_block)),
        ("simple-conduction", (simple.record_row_sweep, simple.record_column_sweep)),
        ("sweep3d-octant", (sweep3d.record_octant_block,)),
        ("alignment-dp", (alignment.build_score_block,)),
    )
    rows = tuple(
        LocRow(
            name,
            kernel_lines=sum(_code_lines(fn) for fn in fns),
            machinery_lines=machinery,
        )
        for name, fns in kernels
    )
    return LocResult(rows=rows, machinery_lines=machinery)
