"""SIMPLE: a 2-D Lagrangian hydrodynamics benchmark (Crowley et al., 1978).

The paper's second benchmark.  SIMPLE advances a compressible fluid on a
2-D staggered mesh; the bulk of each cycle is fully parallel stencil work,
with an implicit **heat-conduction** solve whose alternating-direction sweeps
are the wavefront computations (the two grey bars of Figs. 6/7).  That is
exactly the profile the paper reports: the wavefronts are a small fraction of
SIMPLE's runtime, so the whole-program speedup is modest (~7% on one
processor, 5-8% at the low end in parallel) even though the wavefront phases
themselves speed up dramatically.

Structure of one cycle here (a faithful simplification of the LLNL code —
same phase shapes and dependence structure, compact physics):

1. **pressure/EOS** (parallel): ideal-gas pressure and artificial viscosity;
2. **velocity** (parallel stencil): accelerate from pressure gradients;
3. **energy** (parallel): compression work update;
4. **conduction row sweep** (wavefront along dim 0): implicit tridiagonal
   solve, forward elimination + back substitution scan blocks;
5. **conduction column sweep** (wavefront along dim 1): the same solve along
   the orthogonal dimension — the paper's Section 2.2 scenario of wavefronts
   travelling along *orthogonal* dimensions in one program;
6. **timestep control** (reduction).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import zpl
from repro.compiler import compile_scan
from repro.compiler.lowering import CompiledScan
from repro.models.amdahl import PhaseKind, ProgramProfile
from repro.runtime import execute_vectorized
from repro.zpl import EAST, NORTH, SOUTH, WEST, Region, ZArray


@dataclass
class SimpleState:
    """Arrays of one SIMPLE instance over ``[1..n, 1..n]``."""

    n: int
    rho: ZArray  # density
    e: ZArray  # specific internal energy (conducted temperature proxy)
    p: ZArray  # pressure
    q: ZArray  # artificial viscosity
    u: ZArray  # velocity (x)
    v: ZArray  # velocity (y)
    # Tridiagonal solve scratch (shared by both sweeps).
    cc: ZArray  # off-diagonal coefficient
    dd: ZArray  # diagonal
    dinv: ZArray  # reciprocal pivot
    rr: ZArray  # promoted scalar (the paper's array-contraction candidate)
    gamma: float = 1.4
    dt: float = 0.05
    conductivity: float = 0.3
    history: list[float] = field(default_factory=list)

    @property
    def interior(self) -> Region:
        return Region.square(2, self.n - 1)

    def arrays(self) -> tuple[ZArray, ...]:
        return (
            self.rho, self.e, self.p, self.q, self.u, self.v,
            self.cc, self.dd, self.dinv, self.rr,
        )


def build(n: int, seed: int = 0) -> SimpleState:
    """A SIMPLE instance: a hot dense blob in a quiescent background."""
    if n < 6:
        raise ValueError(f"SIMPLE needs n >= 6, got {n}")
    base = Region.square(1, n)
    rng = np.random.default_rng(seed)
    i = np.arange(1, n + 1, dtype=float)[:, None]
    j = np.arange(1, n + 1, dtype=float)[None, :]
    blob = np.exp(-((i - n / 2) ** 2 + (j - n / 2) ** 2) / (n / 4) ** 2)
    state = SimpleState(
        n=n,
        rho=zpl.ZArray(base, name="rho", fill=1.0),
        e=zpl.ZArray(base, name="e", fill=1.0),
        p=zpl.zeros(base, name="p"),
        q=zpl.zeros(base, name="q"),
        u=zpl.zeros(base, name="u"),
        v=zpl.zeros(base, name="v"),
        cc=zpl.zeros(base, name="cc"),
        dd=zpl.ones(base, name="dd"),
        dinv=zpl.ones(base, name="dinv"),
        rr=zpl.zeros(base, name="rr"),
    )
    state.rho.load(1.0 + 0.5 * blob + 0.01 * rng.standard_normal((n, n)))
    state.e.load(1.0 + 2.0 * blob)
    return state


# ---------------------------------------------------------------------------
# Parallel phases
# ---------------------------------------------------------------------------
def eos_phase(state: SimpleState) -> None:
    """Pressure from the ideal-gas EOS plus a simple artificial viscosity."""
    rho, e, p, q, u, v = state.rho, state.e, state.p, state.q, state.u, state.v
    with zpl.covering(state.interior):
        p[...] = (state.gamma - 1.0) * rho * e
        # Von Neumann-Richtmyer-style viscosity on compression.
        q[...] = 0.25 * rho * zpl.maximum(
            -((u @ EAST) - (u @ WEST) + (v @ SOUTH) - (v @ NORTH)), 0.0
        ) ** 2.0


def velocity_phase(state: SimpleState) -> None:
    """Accelerate from the (p + q) gradient (parallel stencil)."""
    p, q, u, v, rho = state.p, state.q, state.u, state.v, state.rho
    with zpl.covering(state.interior):
        u[...] = u - state.dt * ((p @ EAST + q @ EAST) - (p @ WEST + q @ WEST)) / (2.0 * rho)
        v[...] = v - state.dt * ((p @ SOUTH + q @ SOUTH) - (p @ NORTH + q @ NORTH)) / (2.0 * rho)


def energy_phase(state: SimpleState) -> None:
    """Compression work: e changes with the velocity divergence."""
    e, p, q, u, v, rho = state.e, state.p, state.q, state.u, state.v, state.rho
    with zpl.covering(state.interior):
        e[...] = zpl.maximum(
            e
            - state.dt
            * (p + q)
            * ((u @ EAST) - (u @ WEST) + (v @ SOUTH) - (v @ NORTH))
            / (2.0 * rho),
            1e-6,
        )


def density_phase(state: SimpleState) -> None:
    """Mass conservation under the velocity field (parallel stencil)."""
    rho, u, v = state.rho, state.u, state.v
    with zpl.covering(state.interior):
        rho[...] = zpl.maximum(
            rho * (1.0 - state.dt * ((u @ EAST) - (u @ WEST)
                                     + (v @ SOUTH) - (v @ NORTH)) / 2.0),
            1e-6,
        )


def courant_phase(state: SimpleState) -> float:
    """Timestep control: a max-reduction over signal speeds."""
    rho = state.rho.read(state.interior)
    p = state.p.read(state.interior)
    speed = float(np.sqrt(state.gamma * np.abs(p) / rho).max())
    state.history.append(speed)
    return speed


# ---------------------------------------------------------------------------
# Heat conduction: alternating-direction implicit sweeps (the wavefronts)
# ---------------------------------------------------------------------------
def _setup_conduction(state: SimpleState) -> None:
    """Coefficients of the implicit conduction system (parallel phase)."""
    cc, dd, rho = state.cc, state.dd, state.rho
    k = state.conductivity * state.dt
    with zpl.covering(state.interior):
        cc[...] = -k / rho
        dd[...] = 1.0 + 2.0 * k / rho


def record_row_sweep(state: SimpleState) -> tuple[zpl.ScanBlock, zpl.ScanBlock]:
    """Forward/backward scan blocks of the north-south conduction solve."""
    cc, dd, dinv, rr, e = state.cc, state.dd, state.dinv, state.rr, state.e
    with zpl.covering(state.interior):
        with zpl.scan(name="simple-ns-forward", execute=False) as forward:
            rr[...] = cc * (dinv.p @ NORTH)
            dinv[...] = 1.0 / (dd - (cc @ NORTH) * rr)
            e[...] = e - (e.p @ NORTH) * rr
        with zpl.scan(name="simple-ns-backward", execute=False) as backward:
            e[...] = (e - cc * (e.p @ SOUTH)) * dinv
    return forward, backward


def record_column_sweep(state: SimpleState) -> tuple[zpl.ScanBlock, zpl.ScanBlock]:
    """Forward/backward scan blocks of the west-east conduction solve.

    The wavefront travels along the *second* dimension — together with the
    row sweep this is the orthogonal-wavefronts scenario that motivates
    pipelining over clever-distribution in the paper's introduction.
    """
    cc, dd, dinv, rr, e = state.cc, state.dd, state.dinv, state.rr, state.e
    with zpl.covering(state.interior):
        with zpl.scan(name="simple-we-forward", execute=False) as forward:
            rr[...] = cc * (dinv.p @ WEST)
            dinv[...] = 1.0 / (dd - (cc @ WEST) * rr)
            e[...] = e - (e.p @ WEST) * rr
        with zpl.scan(name="simple-we-backward", execute=False) as backward:
            e[...] = (e - cc * (e.p @ EAST)) * dinv
    return forward, backward


def compile_sweeps(state: SimpleState) -> tuple[CompiledScan, ...]:
    """All four conduction scan blocks, compiled."""
    ns_f, ns_b = record_row_sweep(state)
    we_f, we_b = record_column_sweep(state)
    return tuple(compile_scan(b) for b in (ns_f, ns_b, we_f, we_b))


def conduction_phase(state: SimpleState, engine=execute_vectorized) -> None:
    """The ADI heat-conduction solve: NS sweep then WE sweep."""
    _setup_conduction(state)
    ns_f, ns_b, we_f, we_b = compile_sweeps(state)
    _zero_sweep_boundaries(state, dim=0)
    engine(ns_f)
    engine(ns_b)
    _zero_sweep_boundaries(state, dim=1)
    engine(we_f)
    engine(we_b)


def _zero_sweep_boundaries(state: SimpleState, dim: int) -> None:
    """Zero the recurrence seed rows of one sweep direction.

    Zero ``dinv`` and the incoming ``e`` boundary so the first wavefront row
    starts the recurrence exactly as the Thomas oracle does.  (Physically:
    adiabatic walls.)
    """
    first = NORTH if dim == 0 else WEST
    last = SOUTH if dim == 0 else EAST
    lead = state.interior.border(first)
    state.dinv.write(lead, 0.0)
    state.e.write(lead, 0.0)
    trail = state.interior.border(last)
    state.e.write(trail, 0.0)


def step(state: SimpleState, engine=execute_vectorized) -> float:
    """One SIMPLE cycle; returns the Courant signal speed."""
    eos_phase(state)
    velocity_phase(state)
    energy_phase(state)
    density_phase(state)
    conduction_phase(state, engine)
    return courant_phase(state)


def run(state: SimpleState, cycles: int, engine=execute_vectorized) -> list[float]:
    """Run ``cycles`` cycles; returns the Courant history."""
    return [step(state, engine) for _ in range(cycles)]


# ---------------------------------------------------------------------------
# Program profile
# ---------------------------------------------------------------------------
def profile(n: int, cycles: int = 1) -> ProgramProfile:
    """Phase structure of SIMPLE: wavefronts are a small slice of the cycle.

    The parallel hydro phases dominate (EOS, viscosity, velocity, energy,
    density — several sweeps of heavy stencil arithmetic each), so the
    wavefront fraction is ~10%: this is why the paper's whole-program bars
    for SIMPLE are small (7% uniprocessor, 5-8% low end parallel) even
    though the conduction sweeps themselves speed up by the full factor.
    """
    interior = (n - 2) * (n - 2)
    prog = ProgramProfile(f"simple(n={n})")
    prog.add("eos+viscosity", PhaseKind.PARALLEL, 14.0 * interior, cycles)
    prog.add("velocity", PhaseKind.PARALLEL, 14.0 * interior, cycles)
    prog.add("energy", PhaseKind.PARALLEL, 12.0 * interior, cycles)
    prog.add("density", PhaseKind.PARALLEL, 12.0 * interior, cycles)
    prog.add("conduction-setup", PhaseKind.PARALLEL, 4.0 * interior, cycles)
    prog.add("conduction-ns", PhaseKind.WAVEFRONT, 1.5 * interior, cycles)
    prog.add("conduction-we", PhaseKind.WAVEFRONT, 1.5 * interior, cycles)
    prog.add("courant", PhaseKind.SERIAL, 0.5 * interior, cycles)
    return prog
