"""Gauss-Seidel / SOR relaxation: the solver whose natural ordering *is* a
wavefront.

The paper's introduction names solvers as a major source of wavefront
computations, and Gauss-Seidel is the canonical case: sweeping the grid in
lexicographic order, the update

    u[i,j] := (1-w)*u[i,j] + (w/4)*(u[i-1,j] + u[i,j-1]   <- NEW values
                                    + u[i+1,j] + u[i,j+1]) <- OLD values

reads *freshly updated* north and west neighbours — a two-direction
wavefront, written here as one scan block with primed north/west references
and unprimed south/east references.  Without the prime operator an array
language can only express Jacobi; the whole point of the extension is that
Gauss-Seidel becomes expressible *and* pipelinable.

The payoff is classical numerics: Gauss-Seidel converges roughly twice as
fast as Jacobi per sweep, and SOR (over-relaxation) faster still — the test
suite checks both orderings against each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import zpl
from repro.compiler import compile_scan
from repro.compiler.lowering import CompiledScan
from repro.runtime import execute_vectorized
from repro.zpl import EAST, NORTH, SOUTH, WEST, Region, ZArray


@dataclass
class GaussSeidelState:
    """The iterate, the right-hand side, and the relaxation factor."""

    n: int
    u: ZArray
    f: ZArray
    omega: float = 1.0  # 1.0 = plain Gauss-Seidel; >1 = SOR
    history: list[float] = field(default_factory=list)

    @property
    def interior(self) -> Region:
        return Region.square(2, self.n - 1)


def build(n: int, omega: float = 1.0, hot_edge: float = 1.0) -> GaussSeidelState:
    """The same Laplace problem as :mod:`repro.apps.jacobi`: hot top edge."""
    if n < 4:
        raise ValueError(f"Gauss-Seidel needs n >= 4, got {n}")
    if not 0.0 < omega < 2.0:
        raise ValueError(f"SOR requires 0 < omega < 2, got {omega}")
    base = Region.square(1, n)
    u = zpl.zeros(base, name="u")
    f = zpl.zeros(base, name="f")
    u.write(Region.of((1, 1), (1, n)), hot_edge)
    return GaussSeidelState(n=n, u=u, f=f, omega=omega)


def record_sweep(state: GaussSeidelState) -> zpl.ScanBlock:
    """One lexicographic sweep as a scan block (primed north/west)."""
    u, f = state.u, state.f
    w = state.omega
    with zpl.covering(state.interior):
        with zpl.scan(name="gauss-seidel", execute=False) as block:
            u[...] = (1.0 - w) * u + (w / 4.0) * (
                (u.p @ NORTH) + (u.p @ WEST) + (u @ SOUTH) + (u @ EAST) - f
            )
    return block


def compile_sweep(state: GaussSeidelState) -> CompiledScan:
    """Compiled sweep; its WSV is (-,-) — the paper's Example 2 shape."""
    return compile_scan(record_sweep(state))


def residual(state: GaussSeidelState) -> float:
    """Max |4u - neighbours + f| over the interior."""
    interior = state.interior
    u = state.u
    lap = (
        4.0 * u.read(interior)
        - u.read(interior.shift(NORTH))
        - u.read(interior.shift(SOUTH))
        - u.read(interior.shift(WEST))
        - u.read(interior.shift(EAST))
    )
    return float(np.abs(lap + state.f.read(interior)).max())


def step(state: GaussSeidelState, engine=execute_vectorized) -> float:
    """One sweep; returns the post-sweep residual."""
    engine(compile_sweep(state))
    value = residual(state)
    state.history.append(value)
    return value


def solve(
    state: GaussSeidelState,
    tol: float = 1e-6,
    max_sweeps: int = 10_000,
    engine=execute_vectorized,
) -> int:
    """Sweep until the residual drops below ``tol``; returns sweep count."""
    for k in range(1, max_sweeps + 1):
        if step(state, engine) < tol:
            return k
    return max_sweeps


def optimal_sor_omega(n: int) -> float:
    """The classical optimal SOR factor for the 2-D Laplacian."""
    rho = np.cos(np.pi / (n - 1))  # Jacobi spectral radius
    return float(2.0 / (1.0 + np.sqrt(1.0 - rho * rho)))
