"""Unconstrained distance vectors (paper Section 3.1).

Traditional distance vectors are derived from loop nests; here the loop nest
does not exist yet — the compiler *chooses* it.  Unconstrained distance
vectors (UDVs) therefore live in **array-dimension space**: a dependence with
vector ``v`` is respected by a loop structure (a dimension order plus a
traversal direction per dimension) exactly when ``v`` becomes lexicographically
positive once each component is multiplied by its dimension's traversal sign
and the components are read in loop order.  The zero vector denotes a
loop-independent dependence, satisfied by the lexical statement order inside
the fused body.

Extraction rules for a fused statement group (scan block or ordinary array
statements):

* a **primed** reference ``A'@d`` where ``A`` is written in the group is a
  *true* dependence with UDV ``-d`` — the paper's rule that "the unconstrained
  distance vectors associated with primed array references are simply negated";
* an **unprimed** reference ``A@d`` where ``A`` is written by a lexically
  *earlier* statement is a *true* dependence with UDV ``-d`` (the reference
  names the new value, which must already have been stored when the shifted
  index is behind the sweep);
* an **unprimed** reference ``A@d`` where ``A`` is written by this or a
  lexically *later* statement is an *anti* dependence with UDV ``d`` (the
  reference names the old value, so the overwrite must not have happened yet
  — this is what forces Fig. 3(a)'s loop to run from high to low indices);
* two statements assigning the same array give an *output* dependence with
  the zero vector (each element is written at the same iteration point).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.zpl.statements import Assign


class DepKind(enum.Enum):
    """Dependence classes, as in classical dependence theory."""

    TRUE = "true"
    ANTI = "anti"
    OUTPUT = "output"


@dataclass(frozen=True)
class Dependence:
    """One array-level dependence between statements of a fused group.

    ``vector`` is the unconstrained distance vector that the chosen loop
    structure must make lexicographically non-negative (positive unless zero).
    ``src``/``dst`` are statement indices within the group, ``array`` the name
    of the array carrying the dependence.
    """

    vector: tuple[int, ...]
    kind: DepKind
    src: int
    dst: int
    array: str

    def is_loop_independent(self) -> bool:
        """True for the zero vector (satisfied by lexical order)."""
        return all(c == 0 for c in self.vector)

    def __repr__(self) -> str:
        return (
            f"{self.kind.value}{self.vector} {self.array} "
            f"(S{self.src} -> S{self.dst})"
        )


def _writers(statements: Sequence[Assign]) -> dict[int, list[int]]:
    """Map ``id(array) -> sorted statement indices writing it``."""
    writers: dict[int, list[int]] = {}
    for j, stmt in enumerate(statements):
        writers.setdefault(id(stmt.target), []).append(j)
    return writers


def extract_dependences(
    statements: Sequence[Assign], primed_allowed: bool = True
) -> tuple[Dependence, ...]:
    """Extract every UDV of a fused statement group.

    ``primed_allowed=False`` is used for ordinary (non-scan) statement groups,
    where a primed reference is a caller bug; the scan-block legality checker
    handles the primed rules itself.
    """
    writers = _writers(statements)
    deps: list[Dependence] = []
    for j, stmt in enumerate(statements):
        for ref in stmt.expr.refs():
            name = ref.array.name or f"<array#{id(ref.array):x}>"
            w = writers.get(id(ref.array), [])
            d = tuple(ref.offset)
            neg = tuple(-c for c in d)
            if ref.primed:
                if not primed_allowed:
                    raise ValueError(
                        "primed reference outside a scan block reached the "
                        "dependence extractor"
                    )
                # Primed: true dependence from the block's writes of this
                # array, with the negated direction as UDV.
                src = max(w) if w else j
                deps.append(Dependence(neg, DepKind.TRUE, src, j, name))
                continue
            if not w:
                continue  # array not written in the group: no constraint
            for k in w:
                if k < j:
                    deps.append(Dependence(neg, DepKind.TRUE, k, j, name))
                else:
                    deps.append(Dependence(d, DepKind.ANTI, j, k, name))
    # Output dependences between distinct statements writing the same array.
    for indices in writers.values():
        for a, b in zip(indices, indices[1:]):
            name = statements[a].target.name or "<array>"
            rank = statements[a].region.rank
            deps.append(
                Dependence((0,) * rank, DepKind.OUTPUT, a, b, name)
            )
    return tuple(deps)


def true_vectors(deps: Sequence[Dependence]) -> tuple[tuple[int, ...], ...]:
    """The UDVs of the true dependences only (these govern parallelism)."""
    return tuple(d.vector for d in deps if d.kind is DepKind.TRUE)


def constraint_vectors(deps: Sequence[Dependence]) -> tuple[tuple[int, ...], ...]:
    """All nonzero UDVs — the constraints the loop structure must satisfy."""
    return tuple(d.vector for d in deps if not d.is_loop_independent())
