"""Pretty-printing: render recorded programs back as ZPL-style source.

The embedded DSL is the language surface; this module closes the loop by
emitting the textual form the paper uses, so a recorded Tomcatv block prints
as Fig. 2(b):

    [2..n-2,2..n-1] scan
                      r := aa * d'@north;
                      d := 1.0 / (dd - aa@north * r);
                      rx := rx - rx'@north * r;
                      ry := ry - ry'@north * r;
                    end;

Used by documentation, the expressiveness study, and error messages.
"""

from __future__ import annotations

from repro.zpl.directions import (
    Direction,
    NORTH,
    SOUTH,
    WEST,
    EAST,
    NORTHWEST,
    NORTHEAST,
    SOUTHWEST,
    SOUTHEAST,
)
from repro.zpl.expr import (
    BinOp,
    Const,
    FloodExpr,
    Node,
    ReduceExpr,
    Ref,
    UnOp,
    Where,
)
from repro.zpl.regions import Region
from repro.zpl.scan import ScanBlock
from repro.zpl.statements import Assign

#: Canonical names for the cardinal directions.
_DIRECTION_NAMES = {
    tuple(NORTH): "north",
    tuple(SOUTH): "south",
    tuple(WEST): "west",
    tuple(EAST): "east",
    tuple(NORTHWEST): "northwest",
    tuple(NORTHEAST): "northeast",
    tuple(SOUTHWEST): "southwest",
    tuple(SOUTHEAST): "southeast",
}

#: Binary-operator precedence for minimal parenthesisation.
_PRECEDENCE = {"+": 1, "-": 1, "*": 2, "/": 2, "**": 3,
               "max": 0, "min": 0, "<": 0, "<=": 0, ">": 0, ">=": 0,
               "==": 0, "!=": 0}


def format_direction(direction: Direction) -> str:
    """A direction's symbolic name, or its vector form."""
    key = tuple(direction)
    if key in _DIRECTION_NAMES:
        return _DIRECTION_NAMES[key]
    if direction.name:
        return direction.name
    return "(" + ",".join(str(c) for c in key) + ")"


def format_region(region: Region) -> str:
    """ZPL's bracketed inclusive-range form: ``[2..n-2,2..n-1]``."""
    return "[" + ",".join(f"{lo}..{hi}" for lo, hi in region.ranges) + "]"


def format_const(value: float) -> str:
    """Shortest decimal form that parses back to exactly ``value``."""
    compact = f"{value:g}"
    if float(compact) == value:
        return compact
    return repr(value)


def format_expr(expr: Node, parent_prec: int = 0) -> str:
    """Render an expression tree with ZPL spellings."""
    if isinstance(expr, Const):
        return format_const(expr.value)
    if isinstance(expr, Ref):
        text = expr.array.name or "<array>"
        if expr.primed:
            text += "'"
        if not expr.offset.is_zero():
            text += "@" + format_direction(expr.offset)
        return text
    if isinstance(expr, BinOp):
        if expr.op in ("max", "min"):
            return (
                f"{expr.op}({format_expr(expr.left)}, {format_expr(expr.right)})"
            )
        prec = _PRECEDENCE.get(expr.op, 0)
        body = (
            f"{format_expr(expr.left, prec)} {expr.op} "
            f"{format_expr(expr.right, prec + 1)}"
        )
        return f"({body})" if prec < parent_prec else body
    if isinstance(expr, UnOp):
        if expr.op == "-":
            return f"-{format_expr(expr.operand, 99)}"
        return f"{expr.op}({format_expr(expr.operand)})"
    if isinstance(expr, Where):
        return (
            f"where({format_expr(expr.cond)}, {format_expr(expr.if_true)}, "
            f"{format_expr(expr.if_false)})"
        )
    if isinstance(expr, ReduceExpr):
        dims = "" if expr.dims is None else f"[{','.join(map(str, expr.dims))}]"
        return f"{expr.op}<<{dims} {format_expr(expr.operand, 99)}"
    if isinstance(expr, FloodExpr):
        dims = ",".join(map(str, expr.dims))
        return f">>[{dims}] {format_expr(expr.operand, 99)}"
    return repr(expr)


def format_statement(stmt: Assign, with_region: bool = True) -> str:
    """One assignment statement: ``[R] target := expr;``."""
    name = stmt.target.name or "<array>"
    prefix = format_region(stmt.region) + " " if with_region else ""
    return f"{prefix}{name} := {format_expr(stmt.expr)};"


def format_scan_block(block: ScanBlock) -> str:
    """A whole scan block in the paper's Fig. 2(b) layout."""
    region = format_region(block.region)
    header = f"{region} scan"
    indent = " " * (len(region) + 1)
    lines = [header]
    for stmt in block.statements:
        lines.append(f"{indent}  {format_statement(stmt, with_region=False)}")
    lines.append(f"{indent}end;")
    return "\n".join(lines)
