"""Multicast collectives: one epoch publish releases a whole fan-out.

The point-to-point fabric (:mod:`repro.parallel.channels`) charges one pipe
round — one α — per producer→consumer edge per pipeline block.  This module
replaces those tokens with a **shared-memory epoch fabric**: every rank owns
one int64 *epoch* slot in a small shared segment, and "my block ``k`` is
computed" becomes a single store of ``k + 1`` into that slot plus one
semaphore post per *parked* consumer.  The stamp is one userspace write no
matter how many consumers it releases, so the per-message α is amortised
across the fan-out — exactly the ``summa_manual`` → ``summa_multicasting``
step of ROADMAP item 3 — and in the steady state (producer running ahead)
a consumer's wait is a plain memory read: zero syscalls, zero pickling.

Fan-out is derived from the same UDV projections the tile DAG
(:mod:`repro.compiler.taskdag`) is built from: a producer tile with a
diagonal dependence ``(1, 1)`` feeds *two* consumer tiles of the next rank
(chunk ``k`` and ``k + 1``), and one epoch stamp releases both.  The
planner selects the fabric automatically when that tile fan-out is ≥ 2
(``REPRO_MULTICAST=auto``, the default); ``1``/``0`` force it on/off.

On top of the epochs sits **double-buffered boundary staging**
(``REPRO_DOUBLE_BUFFER``): each producer owns a two-slot boundary segment
(:class:`repro.parallel.sharedmem.BoundaryPool`) and copies block ``k``'s
halo rows into slot ``k % 2`` *before* stamping, while its consumers may
still be reading block ``k - 1`` out of the other slot.  The epoch flip is
the only synchronisation: overwriting a slot is gated on a per-consumer
credit stamp (the last reader of block ``k - 2`` releases the slot), so
the front buffer stays stable until every consumer is done with it.  On a
shared-memory host the copy-back writes values bit-identical to what the
producer already stored globally — the staging traffic is the transfer a
future distributed backend needs, measured here under the same α+β model.

Liveness note: the park/stamp handshake is a Dekker-style flag protocol
without fences, so a wakeup can in principle be missed; every semaphore
wait therefore uses short timeout slices and re-checks the epoch word, so
a missed post costs one slice of latency, never a hang.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.compiler.lowering import CompiledScan
from repro.compiler.taskdag import _projected_vectors
from repro.errors import DistributionError, MachineError
from repro.machine.schedules import WavefrontPlan
from repro.parallel.sharedmem import BoundaryPool, _untracked_attach
from repro.zpl.regions import Region

#: Fabric knob: ``auto`` (tile fan-out >= 2 selects multicast), ``1`` (always
#: for pipelined schedules), ``0`` (never — point-to-point pipes only).
MULTICAST_ENV = "REPRO_MULTICAST"

#: Staging knob: double-buffered boundary segments on multicast runs
#: (default on; ``0`` publishes epochs without staging copies).
DOUBLE_BUFFER_ENV = "REPRO_DOUBLE_BUFFER"

#: Slices for semaphore waits: the recovery bound for a missed wakeup.
WAIT_SLICE = 0.05

#: Spin bound before parking on the semaphore: pure memory reads for this
#: long first, because with spare cores the awaited stamp is usually
#: microseconds away and a kernel sleep would put a whole scheduler quantum
#: on the critical path of every block.  Spinning only pays when the ranks
#: are not time-sliced onto the waited-on rank's core, so the channel
#: disables it (parks immediately) when the host has no spare cores.
CREDIT_SLICE = 0.0005


def resolve_multicast(multicast: bool | str | None) -> str:
    """Normalise the fabric request to ``"on"``/``"off"``/``"auto"``.

    ``None`` honours ``REPRO_MULTICAST`` (default ``auto``); booleans map
    to ``on``/``off``.
    """
    if multicast is None:
        multicast = os.environ.get(MULTICAST_ENV, "") or "auto"
    if multicast in (True, 1, "1", "on"):
        return "on"
    if multicast in (False, 0, "0", "off", ""):
        return "off"
    if multicast == "auto":
        return "auto"
    raise MachineError(
        f"unknown {MULTICAST_ENV} value {multicast!r}; pick 0, 1 or auto"
    )


def resolve_double_buffer(double_buffer: bool | None) -> bool:
    """``None`` honours ``REPRO_DOUBLE_BUFFER`` (default on)."""
    if double_buffer is None:
        return os.environ.get(DOUBLE_BUFFER_ENV, "") not in ("0", "off")
    return bool(double_buffer)


# ---------------------------------------------------------------------------
# Fan-out derivation (rank-level groups from the tile-DAG projections)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MulticastGroups:
    """Who releases whom: the rank-level producer/consumer relation.

    Derived once per (plan, grid) from the UDV projections; plain data, so
    it rides a pool job pipe unchanged.  ``producers[r]`` is transitively
    reduced — a producer implied by another producer's own waits is
    dropped, so each rank performs the minimum number of epoch reads.
    """

    #: Per rank: the ranks whose epochs it must wait on (reduced).
    producers: tuple[tuple[int, ...], ...]
    #: Per rank: the ranks its stamp releases (inverse of ``producers``).
    consumers: tuple[tuple[int, ...], ...]
    #: Per rank: consumer *tiles* one stamp releases (Σ distinct chunk
    #: offsets per consumer rank) — the amortisation factor f.
    fanout: tuple[int, ...]

    @property
    def max_fanout(self) -> int:
        return max(self.fanout, default=0)


def rank_fanout(groups: MulticastGroups) -> int:
    """The planner's selection number: max consumer tiles per stamp."""
    return groups.max_fanout


def plan_groups(
    compiled: CompiledScan,
    plan: WavefrontPlan,
    chains: list[list[int]],
    locals_by_rank: dict[int, Region],
    n_ranks: int,
) -> MulticastGroups | None:
    """Derive the epoch-fabric groups, or ``None`` when pipes must be used.

    Works per chain (mesh columns are independent: the chunk dimension is
    dependence-free by :func:`~repro.parallel.executor._build_distribution`).
    A consumer's slab needs the ``d`` wave-rows before its first row for
    every projected dependence depth ``d``; the ranks owning those rows are
    its producers.  Returns ``None`` when a projection points against the
    traversal (the tile DAG refuses such blocks too) or when there is no
    chunkable dimension (a single block per rank: nothing to pipeline).
    """
    w, c = plan.wavefront_dim, plan.chunk_dim
    if c is None:
        return None
    try:
        vectors = _projected_vectors(compiled, w, c)
    except DistributionError:
        return None
    sw = 1 if compiled.loops.signs[w] >= 0 else -1
    # Depths (normalised wave components) that cross rank boundaries, with
    # the distinct chunk offsets riding each: the per-edge tile fan-out.
    depths: dict[int, set[int]] = {}
    for vw, vc in vectors:
        d = vw * sw
        if d > 0:
            depths.setdefault(d, set()).add(vc)
    producers: list[set[int]] = [set() for _ in range(n_ranks)]
    tile_edges: dict[tuple[int, int], set[int]] = {}
    for chain in chains:
        spans: dict[int, tuple[int, int]] = {}
        for rank in chain:
            local = locals_by_rank[rank]
            if local.is_empty():
                continue
            lo, hi = local.range(w)
            # Normalise to traversal order: descending waves flip the axis.
            spans[rank] = (lo, hi) if sw > 0 else (-hi, -lo)
        for rank in chain:
            if rank not in spans:
                continue
            start = spans[rank][0]
            for d, offsets in depths.items():
                for src in chain:
                    if src == rank or src not in spans:
                        continue
                    s_lo, s_hi = spans[src]
                    if s_lo <= start - 1 and s_hi >= start - d:
                        producers[rank].add(src)
                        tile_edges.setdefault((src, rank), set()).update(
                            offsets
                        )
    # Transitive reduction: drop a producer already implied by another
    # producer's own (transitive) waits — epoch[q] >= k+1 proves q saw
    # epoch[p] >= k+1 for every p it waits on, at the same block index.
    closure: list[set[int]] = [set() for _ in range(n_ranks)]

    def ancestors(r: int) -> set[int]:
        if not closure[r]:
            for p in producers[r]:
                closure[r].add(p)
                closure[r] |= ancestors(p)
        return closure[r]

    reduced: list[tuple[int, ...]] = []
    for r in range(n_ranks):
        keep = {
            p
            for p in producers[r]
            if not any(p in ancestors(q) for q in producers[r] if q != p)
        }
        reduced.append(tuple(sorted(keep)))
    consumers: list[list[int]] = [[] for _ in range(n_ranks)]
    for r, preds in enumerate(reduced):
        for p in preds:
            consumers[p].append(r)
    fanout = tuple(
        sum(
            max(1, len(tile_edges.get((p, r), ())))
            for r in consumers[p]
        )
        for p in range(n_ranks)
    )
    return MulticastGroups(
        producers=tuple(reduced),
        consumers=tuple(tuple(sorted(cs)) for cs in consumers),
        fanout=fanout,
    )


# ---------------------------------------------------------------------------
# Boundary staging layout
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BoundaryLayout:
    """Where each written array's halo rows live inside a staging slot.

    Arrays are identified by index into :func:`collect_arrays` order — the
    one enumeration both parent and workers derive from the same pickled
    structure, so the indices agree by construction.
    """

    #: ``(array index, shift depth along the wave dimension)`` per staged
    #: array, in :func:`collect_arrays` order.
    arrays: tuple[tuple[int, int], ...]
    #: Element offset of each array's area inside a slot.
    offsets: tuple[int, ...]
    #: Slot capacity in elements (two slots per producer).
    slot_elems: int


def boundary_layout(
    compiled: CompiledScan, plan: WavefrontPlan
) -> BoundaryLayout | None:
    """The staging layout for ``plan``, or ``None`` when nothing flows.

    Mirrors :func:`~repro.machine.schedules.plan_wavefront`'s boundary-rows
    accounting: for each written array, the deepest wave-dimension shift
    any reference makes is the number of halo rows consumers need.
    """
    from repro.parallel.sharedmem import collect_arrays

    w = plan.wavefront_dim
    arrays = collect_arrays(compiled)
    index_of = {id(a): i for i, a in enumerate(arrays)}
    written = {id(a) for a in compiled.written_arrays()}
    depth_by_index: dict[int, int] = {}
    for stmt in compiled.statements:
        for ref in stmt.expr.refs():
            depth = abs(ref.offset[w])
            if depth == 0 or id(ref.array) not in written:
                continue
            idx = index_of[id(ref.array)]
            depth_by_index[idx] = max(depth_by_index.get(idx, 0), depth)
    if not depth_by_index:
        return None
    region = plan.region
    # Capacity per halo row: the region's full cross-section off the wave
    # dimension (an upper bound on any block's staged row).
    unit = max(1, region.size // max(1, region.extent(w)))
    entries = sorted(depth_by_index.items())
    offsets: list[int] = []
    cursor = 0
    for _idx, depth in entries:
        offsets.append(cursor)
        cursor += depth * unit
    return BoundaryLayout(
        arrays=tuple(entries), offsets=tuple(offsets), slot_elems=cursor
    )


# ---------------------------------------------------------------------------
# The fabric: parent-side owner + worker-side channel
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MulticastSpec:
    """Everything a worker needs to join the epoch fabric (plain data;
    the per-rank semaphores travel separately, by Process-argument or
    fork-time inheritance — they cannot ride a pipe)."""

    epoch_seg: str
    n_ranks: int
    groups: MulticastGroups
    wave_dim: int
    wave_ascending: bool
    #: Per rank: its local wave-dimension row range, or ``None`` when the
    #: rank owns no rows (consumers derive producers' staged regions here).
    rows_by_rank: tuple[tuple[int, int] | None, ...]
    #: Staging segment + layout; ``None`` disables double buffering.
    boundary_seg: str | None = None
    layout: BoundaryLayout | None = None
    #: The plan's chunk dimension.  When set, successive blocks differ only
    #: along this axis, so the channel compiles the staging geometry to
    #: direct numpy views once and reslices a single axis per block.
    chunk_dim: int | None = None


def _epoch_words(n_ranks: int) -> int:
    # epochs | parked | consumed matrix (row per producer).
    return 2 * n_ranks + n_ranks * n_ranks


class MulticastFabric:
    """Parent-side owner of the epoch segment and the per-rank semaphores.

    Built once per :class:`~repro.parallel.pool.WorkerPool` (before the
    fork: semaphores inherit, they do not pickle) or once per fork-per-run
    execute.  ``reset()`` re-zeroes the epochs between pooled runs —
    submissions serialise, so no worker is mid-flight when it runs.
    """

    def __init__(self, ctx, n_ranks: int):
        self.n_ranks = n_ranks
        self.seg = shared_memory.SharedMemory(
            create=True, size=_epoch_words(n_ranks) * 8
        )
        self._words = np.ndarray(
            (_epoch_words(n_ranks),), dtype=np.int64, buffer=self.seg.buf
        )
        self._words[:] = 0
        self.sems = tuple(ctx.Semaphore(0) for _ in range(n_ranks))

    @property
    def name(self) -> str:
        return self.seg.name

    def reset(self) -> None:
        self._words[:] = 0

    def epochs(self) -> np.ndarray:
        """Parent-side view of the epoch row (tests and probes)."""
        return self._words[: self.n_ranks]

    def consumed(self) -> np.ndarray:
        """Parent-side view of the credit matrix (producer-major)."""
        n = self.n_ranks
        return self._words[2 * n :].reshape(n, n)

    def release(self) -> None:
        if self._words is None:
            return
        self._words = None
        try:
            self.seg.close()
            self.seg.unlink()
        except FileNotFoundError:
            pass


def attach_segment(name: str, cache: dict | None = None):
    """Attach a shared segment without resource-tracker registration,
    optionally through a worker-lifetime cache keyed by name."""
    if cache is not None and name in cache:
        return cache[name]
    with _untracked_attach():
        seg = shared_memory.SharedMemory(name=name)
    if cache is not None:
        cache[name] = seg
    return seg


class MulticastChannel:
    """One rank's endpoint on the epoch fabric.

    The primitive of the tentpole: :meth:`publish` is the single-stamp
    multicast release, :meth:`wait_block` the consumer side, and
    :meth:`stage`/:meth:`absorb` the double-buffered boundary transfer.
    Counters (``releases``/``flips``/``overlap_s``/``wakeups``) accumulate
    for the worker's stats flush.
    """

    def __init__(
        self,
        spec: MulticastSpec,
        sems,
        rank: int,
        arrays=None,
        attach_cache: dict | None = None,
    ):
        self.spec = spec
        self.rank = rank
        self.sems = sems
        n = spec.n_ranks
        self._n = n
        self._own_segments = attach_cache is None
        self._epoch_mem = attach_segment(spec.epoch_seg, attach_cache)
        # Flat int64 view of epochs | parked | consumed.  A memoryview
        # element access is ~10x cheaper than a numpy scalar index, and the
        # fabric words are touched several times per pipeline block — this
        # is the fabric's α, so it runs on raw buffer words.
        self._words = self._epoch_mem.buf.cast("q")
        self.producers = spec.groups.producers[rank]
        self.consumers = spec.groups.consumers[rank]
        #: Hot-path index tables: this rank's parked flag, its consumers'
        #: credit cells (consumed[rank][r]) and parked flags.
        self._park_idx = n + rank
        self._credit_idx = [2 * n + rank * n + r for r in self.consumers]
        self._consumer_park = [(r, n + r) for r in self.consumers]
        self._slots = None
        self._staged: list[tuple] = []
        if (
            spec.boundary_seg is not None
            and spec.layout is not None
            and arrays is not None
        ):
            self._bound_mem = attach_segment(spec.boundary_seg, attach_cache)
            per_rank = BoundaryPool.N_SLOTS * spec.layout.slot_elems
            self._slots = np.ndarray(
                (n, BoundaryPool.N_SLOTS, spec.layout.slot_elems),
                dtype=np.float64,
                buffer=self._bound_mem.buf,
            )
            self._staged = [
                (idx, depth, off, arrays[idx])
                for (idx, depth), off in zip(
                    spec.layout.arrays, spec.layout.offsets
                )
            ]
        else:
            self._bound_mem = None
        #: producer -> (fixed ranges, [(data, slices, axis base, offset)]):
        #: the staging geometry compiled to raw numpy views (hot path).
        self._view_plans: dict = {}
        #: (producer, chunk ranges, slot parity) -> [(array view, slot
        #: view)]: fully-materialised copy pairs, so a repeat visit of a
        #: block is one dict hit and one ``copyto`` per staged array.
        self._pair_cache: dict = {}
        #: Pre-park spin budget: only with cores to spare (see CREDIT_SLICE).
        self._spin_s = (
            CREDIT_SLICE if (os.cpu_count() or 1) > spec.n_ranks else 0.0
        )
        # Stats the worker loop flushes home.
        self.releases = 0
        self.flips = 0
        self.wakeups = 0
        self.overlap_s = 0.0

    # -- staging geometry ---------------------------------------------------
    @property
    def staging(self) -> bool:
        return self._slots is not None

    def _tail_rows(self, producer: int, depth: int) -> tuple[int, int] | None:
        """The last ``depth`` wave-rows of ``producer``'s slab, in traversal
        direction (what its consumers read)."""
        rows = self.spec.rows_by_rank[producer]
        if rows is None:
            return None
        lo, hi = rows
        depth = min(depth, hi - lo + 1)
        if self.spec.wave_ascending:
            return (hi - depth + 1, hi)
        return (lo, lo + depth - 1)

    def _stage_region(
        self, chunk: Region, rows: tuple[int, int]
    ) -> Region:
        ranges = list(chunk.ranges)
        ranges[self.spec.wave_dim] = rows
        return Region(ranges)

    def _halo_views(self, producer: int, chunk: Region) -> list[tuple]:
        """Numpy views of ``producer``'s staged halo under ``chunk``.

        Successive blocks of one run differ only along the chunk dimension,
        so the Region arithmetic (bounds checks, local-coordinate mapping)
        runs once per run; every later block reslices that single axis from
        two integers.  This is what keeps the double-buffer copies off the
        α budget the fabric is trying to save.  Specs without a chunk
        dimension (hand-built, in probes and tests) take the uncached
        Region path every call.
        """
        cd = self.spec.chunk_dim
        ranges = chunk.ranges
        fixed = None if cd is None else ranges[:cd] + ranges[cd + 1 :]
        plan = self._view_plans.get(producer)
        if plan is None or plan[0] != fixed:
            entries = []
            for _idx, depth, off, array in self._staged:
                rows = self._tail_rows(producer, depth)
                if rows is None:
                    continue
                region = self._stage_region(chunk, rows)
                slices = list(array._slices(region))
                base = 0 if cd is None else array._storage_region.lo[cd]
                entries.append((array._data, slices, base, off))
            plan = (fixed, entries)
            if cd is not None:
                self._view_plans[producer] = plan
        if cd is None:
            return [(data[tuple(sl)], off) for data, sl, _base, off in plan[1]]
        lo, hi = ranges[cd]
        views = []
        for data, slices, base, off in plan[1]:
            slices[cd] = slice(lo - base, hi + 1 - base)
            views.append((data[tuple(slices)], off))
        return views

    def _copy_pairs(self, producer: int, chunk: Region, parity: int) -> list:
        """``(array view, slot view)`` pairs for one staged block.

        The first visit of a ``(producer, chunk, parity)`` block builds the
        views through :meth:`_halo_views`; repeat visits — every run after
        the first on a pooled channel — are a dict hit and a ``copyto`` per
        array.  Keyed on the full chunk ranges, so a plan change can never
        serve stale views.
        """
        key = (producer, chunk.ranges, parity)
        pairs = self._pair_cache.get(key)
        if pairs is None:
            slot = self._slots[producer][parity]
            pairs = []
            for view, off in self._halo_views(producer, chunk):
                n = view.size
                if n:
                    pairs.append(
                        (view, slot[off : off + n].reshape(view.shape))
                    )
            if self.spec.chunk_dim is not None:
                self._pair_cache[key] = pairs
        return pairs

    # -- producer side ------------------------------------------------------
    def wait_credit(self, k: int, timeout: float) -> float:
        """Block until slot ``k % 2`` is reusable: every consumer has
        released block ``k - 2`` (credited ``k - 1``).  Returns the seconds
        spent waiting (producer-side backpressure).

        The slow path is the same parked-flag handshake as
        :meth:`wait_for`, in the opposite direction: the producer parks
        itself and :meth:`absorb`/:meth:`credit` post its semaphore when
        they see the flag.  A brief spin comes first — in a balanced
        pipeline the credit is typically microseconds away, and sleeping
        into the kernel would put a whole scheduler quantum on the
        critical path of every block.
        """
        if k < BoundaryPool.N_SLOTS or not self.consumers:
            return 0.0
        need = k - 1
        words = self._words
        credit_idx = self._credit_idx
        if all(words[i] >= need for i in credit_idx):
            return 0.0
        t0 = time.perf_counter()
        deadline = t0 + timeout
        spin_until = t0 + self._spin_s
        park_idx = self._park_idx
        sem = self.sems[self.rank]
        while not all(words[i] >= need for i in credit_idx):
            if time.perf_counter() < spin_until:
                continue
            words[park_idx] = 1
            if all(words[i] >= need for i in credit_idx):
                words[park_idx] = 0
                break
            if sem.acquire(timeout=WAIT_SLICE):
                self.wakeups += 1
            elif time.perf_counter() > deadline:
                words[park_idx] = 0
                laggards = [
                    r
                    for r, i in zip(self.consumers, credit_idx)
                    if words[i] < need
                ]
                raise MachineError(
                    f"timed out after {timeout:.2f}s waiting for consumer "
                    f"rank(s) {laggards} to release boundary slot for "
                    f"block {k} (rank {self.rank})"
                )
        words[park_idx] = 0
        return time.perf_counter() - t0

    def stage(self, k: int, chunk: Region, timeout: float) -> float:
        """Copy block ``k``'s halo rows into the back buffer (slot
        ``k % 2``) while consumers may still read ``k - 1``'s front buffer.
        Returns the credit-wait seconds (the rest of the copy overlaps)."""
        if not self.staging or not self.consumers or chunk.is_empty():
            return 0.0
        waited = self.wait_credit(k, timeout)
        words = self._words
        # "Overlap": staging k while some consumer still holds k-1's front
        # buffer — the copy the serial fabric would keep on the critical path.
        front_live = k >= 1 and any(words[i] < k for i in self._credit_idx)
        t0 = time.perf_counter()
        parity = k % BoundaryPool.N_SLOTS
        for view, slot_view in self._copy_pairs(self.rank, chunk, parity):
            np.copyto(slot_view, view)
        self.flips += 1
        if front_live:
            self.overlap_s += time.perf_counter() - t0
        return waited

    def publish(self, k: int) -> None:
        """The multicast release: one epoch stamp serves every consumer."""
        words = self._words
        words[self.rank] = k + 1
        if self.consumers:
            self.releases += 1
            for r, pidx in self._consumer_park:
                if words[pidx]:
                    self.sems[r].release()

    # -- consumer side ------------------------------------------------------
    def wait_for(self, producer: int, k: int, timeout: float) -> None:
        """Block until ``producer`` has published block ``k``."""
        target = k + 1
        words = self._words
        if words[producer] >= target:
            return
        now = time.perf_counter()
        deadline = now + timeout
        spin_until = now + self._spin_s
        while time.perf_counter() < spin_until:
            if words[producer] >= target:
                return
        sem = self.sems[self.rank]
        park_idx = self._park_idx
        while True:
            words[park_idx] = 1
            if words[producer] >= target:
                words[park_idx] = 0
                return
            if sem.acquire(timeout=WAIT_SLICE):
                self.wakeups += 1
            elif time.perf_counter() > deadline:
                words[park_idx] = 0
                raise MachineError(
                    f"timed out after {timeout:.2f}s waiting for multicast "
                    f"epoch of block {k} from rank {producer} "
                    f"(rank {self.rank} sees epoch "
                    f"{int(words[producer])})"
                )

    def wait_block(self, k: int, timeout: float) -> None:
        for producer in self.producers:
            self.wait_for(producer, k, timeout)

    def absorb(self, k: int, chunk: Region) -> None:
        """Copy every producer's front buffer for block ``k`` back into the
        global coordinates it describes, then credit the slot.

        The values are bit-identical to what the producer already stored in
        shared memory, so concurrent absorbs by sibling consumers are
        benign; the credit is what lets the producer flip the buffer.
        """
        if not self.staging:
            return
        words = self._words
        n_ranks = self._n
        empty = chunk.is_empty()
        parity = k % BoundaryPool.N_SLOTS
        for producer in self.producers:
            if not empty:
                for view, slot_view in self._copy_pairs(
                    producer, chunk, parity
                ):
                    np.copyto(view, slot_view)
            words[2 * n_ranks + producer * n_ranks + self.rank] = k + 1
            if words[n_ranks + producer]:
                self.sems[producer].release()

    def absorb_through(self, k: int, start: int, chunks) -> int:
        """Absorb blocks ``start .. k`` plus every further block already
        published by all producers.  Returns the next unabsorbed index.

        The eager tail is what keeps the two-slot window off the critical
        path: copying a published halo out of its slot immediately (instead
        of when the consumer's compute catches up) returns the credit while
        the producer still has runway, so backpressure parks only when the
        consumer is genuinely behind on copies, not on compute.  Absorbing
        ahead is safe — published halo values are final, and the absorbed
        rows belong to the producer's slab, which this rank never writes.
        """
        hi = k + 1
        words = self._words
        if self.producers:
            epoch = min(int(words[p]) for p in self.producers)
            if epoch > hi:
                hi = min(epoch, len(chunks))
        if hi <= start:
            return start
        for j in range(start, hi):
            self.absorb(j, chunks[j])
        return hi

    def credit(self, producer: int, k: int) -> None:
        """Release ``producer``'s slot for block ``k`` without a copy-back
        (probes and tests that read the slot directly)."""
        n = self._n
        self._words[2 * n + producer * n + self.rank] = k + 1
        if self._words[n + producer]:
            self.sems[producer].release()

    # -- lifecycle ----------------------------------------------------------
    def drain(self) -> None:
        """Swallow stale semaphore posts left by an earlier run."""
        while self.sems[self.rank].acquire(False):
            pass

    def reset_stats(self) -> None:
        """Zero the per-run counters (a pooled channel outlives its jobs)."""
        self.releases = self.flips = self.wakeups = 0
        self.overlap_s = 0.0

    def stats(self) -> dict:
        return {
            "mcast_releases": self.releases,
            "buffer_flips": self.flips,
            "overlap_seconds": self.overlap_s,
            "mcast_wakeups": self.wakeups,
        }

    def detach(self) -> None:
        """Close this endpoint's attachments (owned-segment mode only)."""
        if self._words is not None:
            self._words.release()
        self._words = self._slots = None
        self._view_plans.clear()
        self._pair_cache.clear()
        if self._own_segments:
            for seg in (self._epoch_mem, self._bound_mem):
                if seg is not None:
                    try:
                        seg.close()
                    except BufferError:
                        pass
