"""Benchmark-suite configuration.

Every paper figure has a ``test_bench_fig*.py`` regenerating its data under
``pytest-benchmark`` timing; ablation benches cover the design choices
DESIGN.md calls out (block size dynamism, transpose-vs-pipeline, engine
vectorisation, schedule overheads).  Sizes are chosen so the full suite runs
in about a minute: the *figures'* fidelity is asserted in tests/ — here the
benchmark clock measures the harness itself.
"""

import pytest


@pytest.fixture
def bench(benchmark):
    """A pytest-benchmark handle tuned for fast, stable runs."""
    benchmark._min_rounds = 3
    return benchmark
