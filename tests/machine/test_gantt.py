"""Tests for activity tracing and the Gantt renderer (Fig. 4 machinery)."""

import pytest

from repro.apps import suite
from repro.errors import MachineError
from repro.machine import (
    Machine,
    MachineParams,
    naive_wavefront,
    pipelined_wavefront,
    render_gantt,
)

PARAMS = MachineParams(name="g", alpha=30.0, beta=1.0)


def traced_runs(n=33, p=4, b=8):
    compiled = suite.get("single-stream").build(n)
    naive = naive_wavefront(
        compiled, PARAMS, n_procs=p, compute_values=False, trace_activity=True
    )
    piped = pipelined_wavefront(
        compiled, PARAMS, n_procs=p, block_size=b,
        compute_values=False, trace_activity=True,
    )
    return naive.run, piped.run


class TestActivityTracing:
    def test_disabled_by_default(self):
        compiled = suite.get("single-stream").build(17)
        outcome = naive_wavefront(compiled, PARAMS, n_procs=2, compute_values=False)
        assert all(not s.activity for s in outcome.run.proc_stats)

    def test_intervals_cover_busy_time(self):
        naive, piped = traced_runs()
        for run in (naive, piped):
            for stats in run.proc_stats:
                recorded = sum(a.duration for a in stats.activity)
                assert recorded == pytest.approx(stats.busy_time)

    def test_intervals_ordered_and_disjoint(self):
        _, piped = traced_runs()
        for stats in piped.proc_stats:
            for a, b in zip(stats.activity, stats.activity[1:]):
                assert a.end <= b.start + 1e-9

    def test_kinds(self):
        _, piped = traced_runs()
        kinds = {a.kind for s in piped.proc_stats for a in s.activity}
        assert kinds == {"compute", "comm"}


class TestGantt:
    def test_renders_one_row_per_proc(self):
        naive, _ = traced_runs(p=4)
        text = render_gantt(naive, width=40)
        assert text.count("|") == 2 * 4
        assert "P3" in text

    def test_naive_shows_staircase(self):
        naive, piped = traced_runs()
        # The pipelined run is denser: higher utilisation.
        assert piped.utilization > naive.utilization

    def test_requires_tracing(self):
        compiled = suite.get("single-stream").build(17)
        outcome = naive_wavefront(compiled, PARAMS, n_procs=2, compute_values=False)
        with pytest.raises(MachineError, match="trace_activity"):
            render_gantt(outcome.run)

    def test_title(self):
        naive, _ = traced_runs()
        assert render_gantt(naive, title="hello").startswith("hello")


#: Golden Fig. 4(a): the naive schedule's staircase of idle time.  The
#: virtual clock is deterministic, so these renders are byte-stable.
GOLDEN_NAIVE = """\
t = 0 ............................. 1245
P0 |########................................|
P1 |........~~########......................|
P2 |..................~~~########...........|
P3 |.............................~~########.|
legend: # compute   ~ communication   . idle (utilisation 25%)"""

#: Golden Fig. 4(b): the pipelined schedule's early overlap.
GOLDEN_PIPELINED = """\
t = 0 .............................. 715
P0 |###############.........................|
P1 |...~~####~~###~~~###~~####~~#...........|
P2 |.........~~###~~~###~~####~~####~#......|
P3 |..............~~~###~~####~~####~~###~~#|
legend: # compute   ~ communication   . idle (utilisation 56%)"""


class TestGanttGolden:
    """Byte-exact Fig. 4 renders (regressions in scaling/marks show here)."""

    def test_naive_timeline(self):
        naive, _ = traced_runs(n=33, p=4, b=8)
        assert render_gantt(naive, width=40) == GOLDEN_NAIVE

    def test_pipelined_timeline(self):
        _, piped = traced_runs(n=33, p=4, b=8)
        assert render_gantt(piped, width=40) == GOLDEN_PIPELINED


class TestGanttTinyWidths:
    """Degenerate widths: the header must not underflow and every
    positive-duration interval must paint at least one cell."""

    def test_width_five_header_falls_back(self):
        _, piped = traced_runs()
        text = render_gantt(piped, width=5)
        assert text.splitlines()[0] == "t = 0 .. 715"
        # Every row is exactly |·····| wide.
        for line in text.splitlines()[1:-1]:
            assert len(line.split("|")[1]) == 5

    def test_width_one_renders(self):
        _, piped = traced_runs()
        text = render_gantt(piped, width=1)
        for rank in range(4):
            assert f"P{rank} |#|" in text

    def test_width_zero_rejected(self):
        _, piped = traced_runs()
        with pytest.raises(MachineError, match="width"):
            render_gantt(piped, width=0)

    def test_subcell_intervals_paint(self):
        # At width 5 a single compute chunk is far below one cell; each
        # processor must still show at least one '#'.
        _, piped = traced_runs()
        text = render_gantt(piped, width=5)
        for line in text.splitlines()[1:-1]:
            assert "#" in line


class TestFig4Experiment:
    def test_pipelined_wins(self):
        from repro.experiments import fig4_illustration

        result = fig4_illustration.run()
        assert result.pipelining_speedup > 1.5
        assert result.pipelined_run.utilization > result.naive_run.utilization

    def test_report_contains_both_panels(self):
        from repro.experiments import fig4_illustration

        text = fig4_illustration.run().report()
        assert "(a) naive" in text
        assert "(b) pipelined" in text
        assert "#" in text and "~" in text
