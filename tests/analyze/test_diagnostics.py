"""The diagnostics data model, renderer and JSON report schema."""

import pytest

from repro.analyze.diagnostics import (
    CODES,
    SCHEMA,
    Because,
    Diagnostic,
    Label,
    Severity,
    make_report,
    render,
    render_all,
    validate_report,
)
from repro.zpl.span import SourceSpan


SOURCE = "\n".join(
    [
        "direction up = (-1, 0);",
        "[2..8, 1..8] scan",
        "  a := a'@up;",
        "end;",
    ]
)


def _sample(code="E001", **kwargs):
    defaults = dict(
        message="array 'a' is never defined",
        span=SourceSpan(3, 3, 3, 14),
        because=(Because("ref", "the primed reference a'@up"),),
        hint="assign 'a' inside the block",
    )
    defaults.update(kwargs)
    return Diagnostic(code, **defaults)


def test_unknown_code_rejected():
    with pytest.raises(ValueError, match="unknown diagnostic code"):
        Diagnostic("E999", "nope")


def test_severity_and_title_come_from_registry():
    d = _sample("W104")
    assert d.severity is Severity.WARNING
    assert d.title == CODES["W104"][1]
    assert Severity.ERROR.rank > Severity.WARNING.rank > Severity.INFO.rank


def test_every_code_has_severity_prefix_convention():
    for code, (severity, title) in CODES.items():
        assert title
        prefix = code[0]
        assert {
            "E": Severity.ERROR, "W": Severity.WARNING, "I": Severity.INFO
        }[prefix] is severity


def test_render_with_source_has_header_arrow_and_carets():
    text = render(_sample(), source=SOURCE, filename="t.zpl")
    lines = text.splitlines()
    assert lines[0] == "error[E001]: array 'a' is never defined"
    assert lines[1] == "  --> t.zpl:3:3"
    assert "  a := a'@up;" in text
    caret_line = next(l for l in lines if "^" in l)
    assert caret_line.count("^") == SourceSpan(3, 3, 3, 14).width
    assert "  = because: the primed reference a'@up" in lines
    assert "  = help: assign 'a' inside the block" in lines


def test_render_without_source_omits_excerpt():
    text = render(_sample())
    assert "^" not in text  # no source text: location header only, no excerpt
    assert "  --> <zpl>:3:3" in text
    assert "= because:" in text and "= help:" in text


def test_render_spanless_diagnostic():
    text = render(_sample(span=None), source=SOURCE, filename="t.zpl")
    assert "-->" not in text
    assert text.startswith("error[E001]:")


def test_render_color_wraps_header():
    text = render(_sample(), source=SOURCE, color=True)
    assert "\x1b[31m" in text and "\x1b[0m" in text


def test_render_label_annotates_second_line():
    d = _sample(
        "W106",
        message="dead store",
        span=SourceSpan(3, 3, 3, 14),
        labels=(Label(SourceSpan(4, 1, 4, 5), "overwritten here"),),
    )
    text = render(d, source=SOURCE, filename="t.zpl")
    assert "overwritten here" in text
    assert "end;" in text  # the label's source line is excerpted too


def test_render_all_blank_line_separated():
    text = render_all([_sample(), _sample("W101", message="unused", span=None)])
    assert "\n\n" in text
    assert text.count("[E001]") == 1 and text.count("[W101]") == 1


def test_report_roundtrip_validates():
    diagnostics = [
        _sample(),
        _sample("W107", message="slow", span=None, because=(), hint=None),
        _sample("I302", message="flat", span=None),
    ]
    report = make_report(diagnostics, "t.zpl")
    assert report["schema"] == SCHEMA
    assert report["counts"] == {"error": 1, "warning": 1, "info": 1}
    validate_report(report)


def test_validate_rejects_schema_drift():
    report = make_report([_sample()], "t.zpl")
    bad = dict(report, schema="repro-analyze/0")
    with pytest.raises(ValueError, match="schema"):
        validate_report(bad)


def test_validate_rejects_count_mismatch():
    report = make_report([_sample()], "t.zpl")
    report["counts"] = {"error": 0, "warning": 1, "info": 0}
    with pytest.raises(ValueError, match="counts"):
        validate_report(report)


def test_validate_rejects_unknown_code_and_severity_drift():
    report = make_report([_sample()], "t.zpl")
    report["diagnostics"][0]["code"] = "E999"
    with pytest.raises(ValueError, match="unknown code"):
        validate_report(report)
    report = make_report([_sample()], "t.zpl")
    report["diagnostics"][0]["severity"] = "warning"
    with pytest.raises(ValueError, match="severity drift"):
        validate_report(report)


def test_to_dict_carries_structured_payload():
    d = _sample(data={"statement": 2, "array": "a"})
    entry = d.to_dict()
    assert entry["span"] == {"line": 3, "col": 3, "end_line": 3, "end_col": 14}
    assert entry["because"] == [
        {"kind": "ref", "detail": "the primed reference a'@up"}
    ]
    assert entry["data"] == {"statement": 2, "array": "a"}
