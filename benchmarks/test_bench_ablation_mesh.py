"""Ablation: 1-D vs 2-D processor-mesh pipelining (DESIGN.md's MESH entry).

The paper's Fig. 4 draws a 2x2 mesh; this bench quantifies the choice for a
fixed processor budget: a 1-D chain maximises wavefront depth, a 2-D mesh
shortens each chain's messages (surface-to-volume).
"""

import pytest

from repro.apps import suite
from repro.machine import (
    CRAY_T3E,
    pipelined_wavefront,
    pipelined_wavefront_mesh,
)

N = 257
BUDGET = 16


def test_mesh_1d(bench):
    compiled = suite.get("single-stream").build(N)
    outcome = bench(
        pipelined_wavefront,
        compiled,
        CRAY_T3E,
        n_procs=BUDGET,
        block_size=16,
        compute_values=False,
    )
    assert outcome.total_time > 0


@pytest.mark.parametrize("mesh", [(8, 2), (4, 4)], ids=["8x2", "4x4"])
def test_mesh_2d(bench, mesh):
    compiled = suite.get("single-stream").build(N)
    outcome = bench(
        pipelined_wavefront_mesh,
        compiled,
        CRAY_T3E,
        mesh=mesh,
        block_size=16,
        compute_values=False,
    )
    assert outcome.n_procs == BUDGET


def test_mesh_shape_comparison(bench):
    """One pass over all mesh shapes for the fixed budget; the result dict
    is the ablation's data product."""
    compiled = suite.get("single-stream").build(N)

    def compare():
        times = {}
        for mesh in ((16, 1), (8, 2), (4, 4), (2, 8)):
            times[mesh] = pipelined_wavefront_mesh(
                compiled, CRAY_T3E, mesh=mesh, block_size=16, compute_values=False
            ).total_time
        return times

    times = bench(compare)
    # On the startup-dominated T3E, per-message cost rules: flatter meshes
    # (fewer pipeline hops, smaller per-chain messages) win monotonically.
    assert times[(16, 1)] > times[(8, 2)] > times[(4, 4)] > times[(2, 8)]
