"""Dynamic wavefront race sanitizer for the multiprocess backend.

``REPRO_SANITIZE=1`` turns every real parallel run into a shadow execution:
alongside the data arrays, the parent allocates one shared *stamp plane*
over the plan's region, every worker keeps a **vector clock** over the
processor grid, and the pipeline tokens carry the sender's clock.  The
invariant checked is exactly the paper's pipelined-schedule correctness
condition: a primed read of cell ``c`` during block ``k`` is legal only
when the block that *writes* ``c`` is happens-before-ordered ahead of the
read via the token protocol (or by the reader's own program order).

Protocol
--------
* Every cell of the plan's region has a static **owner** (the grid rank
  whose local region contains it) and a static **block index** (which of
  the owner's pipeline blocks writes it).  The parent precomputes both
  planes from the same :class:`~repro.machine.distribution.BlockMap` and
  chunk lists the workers run — so the sanitizer validates the actual
  schedule, not a re-derivation of it.
* A worker completing block ``k`` stamps the block's cells with ``k + 1``
  in the shared stamp plane, then increments its own clock entry, then
  sends the token ``(k, clocks)`` downstream.
* On receive, the worker joins the incoming clock into its own
  (element-wise max), which is transitive along the chain.
* Before computing block ``k``, the worker takes every primed reference's
  read region (the block shifted by the reference's direction, clipped to
  the plan region) and verifies per cell: either the cell is outside the
  region (boundary values, never written by the block), or the reader
  itself owns it in an earlier-or-current block (program order / in-block
  loop order), or the joined clock proves the owner completed the cell's
  block **and** the stamp is present.

A protocol regression — the deliberate one below, or a real scheduler bug
— makes the clock test fail *deterministically*: an early-released token
carries a clock that does not yet cover the block, no matter how the
processes interleave afterwards.  Plain stamp-checking would only catch
the race when the timing happened to expose it.

Multicast and pool coverage
---------------------------
The fabric and the persistent pool sanitize too.  On the multicast fabric
no token carries a clock, so clocks ride the epochs instead: the shadow
segment grows a per-``(rank, block)`` **epoch-clock plane** and a producer
publishing block ``k`` first writes its clock into row ``(rank, k)``
(:meth:`SanitizerState.publish_clocks`); a consumer joins that row after
its epoch wait (:meth:`SanitizerState.join_epoch`).  Each row is written
exactly once — unlike a shared per-rank clock row it is never overwritten
by later publishes, so an early-published (un-advanced) clock stays
visible to every consumer no matter how the processes interleave, keeping
the must-trip injections deterministic.  On the pool, workers ship their
final clock back over the result channel (``stats["clocks"]``) and the
parent cross-checks it against the block count each rank owned.

Fault injection
---------------
``REPRO_SANITIZE_INJECT=kind:rank:block`` plants one deterministic
protocol violation (the knob only exists while the sanitizer is on):

* ``early-release:RANK:BLOCK`` — the pipelined schedule's canonical token
  violation: the worker at ``RANK`` sends its token for ``BLOCK`` *before*
  computing it, with its honest, un-incremented clock.
* ``early-fire:RANK:TILE`` — the taskgraph violation: ``TILE`` is enqueued
  onto ``RANK``'s deque before its predecessors complete, with its honest,
  non-zero pending count as enqueue evidence.
* ``early-publish:RANK:STAMP`` — the epoch-fabric violation: the producer
  at ``RANK`` stages and publishes the epoch stamp for block ``STAMP``
  *before* computing it, with its honest, un-advanced clock in the epoch-
  clock row — every consumer's join then fails the happens-before check.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.analyze.diagnostics import Because, Diagnostic
from repro.errors import SanitizerError
from repro.parallel.sharedmem import _untracked_attach
from repro.zpl.regions import Region

#: Environment knobs.
SANITIZE_ENV = "REPRO_SANITIZE"
INJECT_ENV = "REPRO_SANITIZE_INJECT"


def parse_inject(value: str | None) -> tuple[str, int, int] | None:
    """Parse ``REPRO_SANITIZE_INJECT`` (``kind:rank:block``), or ``None``.

    ``early-release`` targets the pipelined schedule (publish a token before
    computing the block); ``early-fire`` targets ``schedule="taskgraph"``
    (enqueue a tile before its predecessors complete); ``early-publish``
    targets the multicast fabric (stamp an epoch before computing its
    block).
    """
    if not value:
        return None
    parts = value.split(":")
    kinds = ("early-release", "early-fire", "early-publish")
    if len(parts) != 3 or parts[0] not in kinds:
        raise SanitizerError(
            f"bad {INJECT_ENV}={value!r}; expected 'early-release:RANK:BLOCK',"
            f" 'early-fire:RANK:TILE' or 'early-publish:RANK:STAMP'"
        )
    try:
        return (parts[0], int(parts[1]), int(parts[2]))
    except ValueError:
        raise SanitizerError(
            f"bad {INJECT_ENV}={value!r}; rank and block must be integers"
        ) from None


@dataclass(frozen=True)
class SanitizerSpec:
    """Everything a worker needs to run shadow checks (pickled per worker).

    The owner/block planes are small read-only int arrays over the plan
    region; only the stamp plane lives in shared memory (workers write it).
    """

    stamp_segment: str
    ranges: tuple[tuple[int, int], ...]  # the plan region's bounds
    owner: np.ndarray  # int32, rank owning each cell (-1: never written)
    block_index: np.ndarray  # int32, owner's block writing each cell (-1 id.)
    n_procs: int
    #: Distinct primed reads: (array name, shift vector).
    primed: tuple[tuple[str, tuple[int, ...]], ...]
    inject: tuple[str, int, int] | None = None
    #: Block count of the per-``(rank, block)`` epoch-clock plane appended
    #: to the stamp segment (multicast runs); ``0`` allocates no plane.
    epoch_clocks: int = 0


class ShadowPool:
    """Parent-side owner of the shared stamp plane + the static planes."""

    def __init__(
        self,
        plan,
        grid,
        chunks_by_rank: dict[int, tuple[Region, ...]],
        inject: tuple[str, int, int] | None = None,
        epoch_clocks: int = 0,
    ):
        region = plan.region
        base = region.lo
        owner = np.full(region.shape, -1, dtype=np.int32)
        block_index = np.full(region.shape, -1, dtype=np.int32)
        for rank, chunks in chunks_by_rank.items():
            for k, chunk in enumerate(chunks):
                if chunk.is_empty():
                    continue
                sl = chunk.to_local(base)
                owner[sl] = rank
                block_index[sl] = k
        stamps = np.zeros(region.shape, dtype=np.int64)
        # Multicast runs append a per-(rank, block) clock plane: row (p, k)
        # receives p's clock exactly once, when p publishes epoch k.
        plane_bytes = 8 * grid.size * epoch_clocks * grid.size
        self._segment = shared_memory.SharedMemory(
            create=True, size=max(1, stamps.nbytes + plane_bytes)
        )
        view = np.ndarray(
            stamps.shape, dtype=stamps.dtype, buffer=self._segment.buf
        )
        view[...] = 0
        if epoch_clocks:
            plane = np.ndarray(
                (grid.size, epoch_clocks, grid.size),
                dtype=np.int64,
                buffer=self._segment.buf,
                offset=stamps.nbytes,
            )
            plane[...] = 0
        primed = sorted(
            {
                (ref.array.name or "<array>", tuple(ref.offset))
                for stmt in plan.compiled.statements
                for ref in stmt.expr.refs()
                if ref.primed
            }
        )
        self.spec = SanitizerSpec(
            stamp_segment=self._segment.name,
            ranges=region.ranges,
            owner=owner,
            block_index=block_index,
            n_procs=grid.size,
            primed=tuple(primed),
            inject=inject,
            epoch_clocks=epoch_clocks,
        )

    def release(self) -> None:
        """Close and unlink the stamp segment (idempotent)."""
        if self._segment is not None:
            try:
                self._segment.close()
                self._segment.unlink()
            except FileNotFoundError:
                pass
            self._segment = None


class SanitizerState:
    """Worker-side shadow state: attached stamp plane + the vector clock."""

    def __init__(self, spec: SanitizerSpec, rank: int):
        self.spec = spec
        self.rank = rank
        self.region = Region(spec.ranges)
        self.base = self.region.lo
        self.clocks = np.zeros(spec.n_procs, dtype=np.int64)
        with _untracked_attach():
            self._segment = shared_memory.SharedMemory(name=spec.stamp_segment)
        self.stamps = np.ndarray(
            self.region.shape, dtype=np.int64, buffer=self._segment.buf
        )
        self.epoch_clocks = None
        if spec.epoch_clocks:
            self.epoch_clocks = np.ndarray(
                (spec.n_procs, spec.epoch_clocks, spec.n_procs),
                dtype=np.int64,
                buffer=self._segment.buf,
                offset=self.stamps.nbytes,
            )
        #: Checks run / cells verified, for the obs counters.
        self.checks = 0
        self.cells = 0

    # -- the protocol hooks --------------------------------------------------
    def join(self, clocks) -> None:
        """Fold a received token's clock into ours (element-wise max)."""
        np.maximum(self.clocks, np.asarray(clocks, dtype=np.int64), out=self.clocks)

    def token(self) -> tuple[int, ...]:
        """The clock to ride on an outgoing token."""
        return tuple(int(c) for c in self.clocks)

    def publish_clocks(self, k: int) -> None:
        """Write our clock into epoch-clock row ``(rank, k)`` — the
        multicast analogue of putting the clock on an outgoing token.
        Each row is written exactly once (block ``k`` publishes once), so
        an early-published, un-advanced clock can never be papered over by
        a later publish."""
        self.epoch_clocks[self.rank, k, :] = self.clocks

    def join_epoch(self, producer: int, k: int) -> None:
        """Join the clock ``producer`` published with its epoch stamp for
        block ``k`` — the multicast analogue of a clocked-token receive."""
        np.maximum(
            self.clocks, self.epoch_clocks[producer, k], out=self.clocks
        )

    def check(self, chunk: Region, k: int) -> None:
        """Verify every primed read of block ``k`` is happens-before ordered.

        Raises :class:`~repro.errors.SanitizerError` (diagnostic ``E100``
        attached) on the first violating read region.
        """
        if chunk.is_empty():
            return
        for name, offset in self.spec.primed:
            read = chunk.shift(offset).intersect(self.region)
            if read.is_empty():
                continue
            sl = read.to_local(self.base)
            owner = self.spec.owner[sl]
            block = self.spec.block_index[sl]
            stamp = self.stamps[sl]
            outside = block < 0
            mine = (owner == self.rank) & (block <= k)
            known = np.where(outside, 0, owner)
            ordered = (self.clocks[known] > block) & (stamp > block)
            violation = ~(outside | mine | ordered)
            self.checks += 1
            self.cells += int(violation.size)
            if not violation.any():
                continue
            local = np.argwhere(violation)[0]
            cell = tuple(int(c) + lo for c, lo in zip(local, read.lo))
            cell_owner = int(owner[tuple(local)])
            cell_block = int(block[tuple(local)])
            raise self._violation(
                name, offset, k, cell, cell_owner, cell_block,
                int(stamp[tuple(local)]),
            )

    def complete(self, chunk: Region, k: int) -> None:
        """Record block ``k`` computed: stamp its cells, advance the clock."""
        if not chunk.is_empty():
            self.stamps[chunk.to_local(self.base)] = k + 1
        self.clocks[self.rank] = k + 1

    def detach(self) -> None:
        """Drop the stamp view and close the segment handle."""
        self.stamps = None
        self.epoch_clocks = None
        try:
            self._segment.close()
        except BufferError:
            pass

    # -- reporting -----------------------------------------------------------
    def _violation(
        self,
        array: str,
        offset: tuple[int, ...],
        k: int,
        cell: tuple[int, ...],
        owner: int,
        block: int,
        stamp: int,
    ) -> SanitizerError:
        message = (
            f"wavefront race: processor {self.rank} reads {array}'@{offset} "
            f"at cell {cell} during block {k}, but the owning write "
            f"(processor {owner}, block {block}) is not ordered before it"
        )
        diagnostic = Diagnostic(
            "E100",
            message,
            because=(
                Because(
                    "token",
                    f"reader's joined vector clock knows {int(self.clocks[owner])} "
                    f"completed block(s) of processor {owner}; the read needs "
                    f"{block + 1}",
                ),
                Because(
                    "note",
                    f"shadow stamp at {cell} is {stamp} (0 = never written; "
                    f"the owning block would stamp {block + 1})",
                ),
                Because(
                    "note",
                    "a token released before its block completed (or a "
                    "mis-derived schedule) produces exactly this state",
                ),
            ),
            hint="inspect the pipelined schedule: tokens must be sent only "
            "after the block's stores are complete",
            data={
                "reader": self.rank,
                "block": k,
                "array": array,
                "offset": list(offset),
                "cell": list(cell),
                "owner": owner,
                "owner_block": block,
                "clock": int(self.clocks[owner]),
                "stamp": stamp,
            },
        )
        error = SanitizerError(message)
        error.diagnostic = diagnostic
        return error
