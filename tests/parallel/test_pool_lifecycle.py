"""Lifecycle robustness: a dead worker costs one request, not the process.

Regression tests for the serving-layer contract of
:mod:`repro.parallel.pool`: a worker killed out from under the pool must
surface as the typed :class:`~repro.errors.PoolBrokenError` on the affected
submission only, flag the pool broken, and — through
:class:`~repro.parallel.PoolSupervisor` — be transparently replaced before
the next submission.
"""

import os
import signal

import numpy as np
import pytest

from repro.compiler import compile_scan
from repro.errors import MachineError, PoolBrokenError
from repro.parallel import PoolSupervisor, WorkerPool
from repro.runtime import execute_vectorized, run_and_capture
from tests.conftest import record_tomcatv_block


def _compiled(n=16):
    block, arrays = record_tomcatv_block(n)
    return compile_scan(block), arrays


def _kill_worker(pool, index=0):
    proc = pool._procs[index]
    os.kill(proc.pid, signal.SIGKILL)
    proc.join(timeout=10)
    assert not proc.is_alive()


def test_pool_broken_error_is_typed_machine_error():
    # Typed for the server's error mapping, MachineError for old callers.
    assert issubclass(PoolBrokenError, MachineError)


def test_killed_worker_fails_fast_with_typed_error():
    compiled, arrays = _compiled()
    pool = WorkerPool(2, timeout=30.0)
    try:
        pool.execute(compiled, block=4)  # healthy warm-up run
        _kill_worker(pool)
        with pytest.raises(PoolBrokenError, match="died"):
            pool.execute(compiled, block=4)
        assert pool.broken
        # Later callers keep getting the typed error, not a hang.
        with pytest.raises(PoolBrokenError, match="broken"):
            pool.execute(compiled, block=4)
    finally:
        pool.close()


def test_supervisor_respawns_after_worker_death():
    compiled, arrays = _compiled()
    with PoolSupervisor(2, timeout=30.0) as sup:
        sup.submit(compiled, block=4)  # builds the pool lazily
        _kill_worker(sup.pool, index=1)
        # Only the in-flight submission observes the failure (the arrays are
        # untouched: the dead worker is noticed before dispatch)...
        with pytest.raises(PoolBrokenError):
            sup.submit(compiled, block=4)
        # ...and the next one runs on a fresh pool, bit-identical again.
        oracle = run_and_capture(execute_vectorized, compiled, arrays)
        def engine(c):
            sup.submit(c, block=4)

        pooled = run_and_capture(engine, compiled, arrays)
        for want, got in zip(oracle, pooled):
            np.testing.assert_array_equal(got, want)
        assert sup.respawns == 1
        assert not sup.pool.broken


def test_supervisor_close_is_terminal():
    sup = PoolSupervisor(2)
    sup.close()
    compiled, _ = _compiled(12)
    with pytest.raises(MachineError, match="closed"):
        sup.submit(compiled)
    sup.close()  # idempotent
