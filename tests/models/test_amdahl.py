"""Tests for the phase-profile composition (Amdahl accounting)."""

import pytest

from repro.errors import ModelError
from repro.models.amdahl import Phase, PhaseKind, ProgramProfile


def make_profile():
    prog = ProgramProfile("demo")
    prog.add("stencil", PhaseKind.PARALLEL, 800.0)
    prog.add("solve", PhaseKind.WAVEFRONT, 150.0)
    prog.add("io", PhaseKind.SERIAL, 50.0)
    return prog


class TestProfile:
    def test_total_work(self):
        assert make_profile().total_work() == 1000.0

    def test_wavefront_fraction(self):
        assert make_profile().wavefront_fraction() == pytest.approx(0.15)

    def test_repeats_scale(self):
        prog = ProgramProfile("r")
        prog.add("x", PhaseKind.PARALLEL, 10.0, repeats=5)
        assert prog.total_work() == 50.0
        assert prog.phases[0].total_work == 50.0

    def test_negative_work_rejected(self):
        prog = ProgramProfile("bad")
        with pytest.raises(ModelError):
            prog.add("x", PhaseKind.SERIAL, -1.0)

    def test_empty_fraction_rejected(self):
        with pytest.raises(ModelError):
            ProgramProfile("empty").wavefront_fraction()


class TestComposition:
    def test_compose_identity(self):
        prog = make_profile()
        assert prog.compose(lambda ph: ph.work) == prog.total_work()

    def test_compose_respects_repeats(self):
        prog = ProgramProfile("r")
        prog.add("x", PhaseKind.PARALLEL, 10.0, repeats=3)
        assert prog.compose(lambda ph: ph.work / 2) == 15.0

    def test_speedup_amdahl_limit(self):
        # With only the parallel phase sped up infinitely, the speedup is
        # bounded by the serial+wavefront share.
        prog = make_profile()

        def baseline(ph: Phase) -> float:
            return ph.work

        def infinitely_parallel(ph: Phase) -> float:
            return 0.0 if ph.kind is PhaseKind.PARALLEL else ph.work

        limit = prog.speedup(baseline, infinitely_parallel)
        assert limit == pytest.approx(1000.0 / 200.0)

    def test_speedup_rejects_degenerate(self):
        prog = make_profile()
        with pytest.raises(ModelError):
            prog.speedup(lambda ph: ph.work, lambda ph: 0.0)
