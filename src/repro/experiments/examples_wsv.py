"""Section 2.2's worked Examples 1-4: WSV construction, legality, wavefront dims.

For each of the paper's four direction instantiations of

    a := (a'@d1 + a'@d2) / 2.0

this experiment builds the actual scan block, computes the wavefront summary
vector, runs the legality check, and (for the legal cases) reports the derived
loop structure and per-dimension parallelism — matching the paper's prose
conclusions exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import zpl
from repro.compiler import compile_scan, wsv_of
from repro.errors import OverconstrainedScanError
from repro.experiments.common import heading
from repro.util.tables import Table

DESCRIPTION = "Section 2.2 Examples 1-4: WSV legality and wavefront dimensions"

#: The paper's four instantiations: (example number, d1, d2, paper verdict).
EXAMPLES = (
    (1, (-1, 0), (-1, 0), "legal; dim 0 wavefront, dim 1 parallel"),
    (2, (-1, 0), (0, -1), "legal; dim 1 wavefront, dim 0 serial"),
    (3, (-1, 0), (1, 1), "legal; dim 1 wavefront, dim 0 serial"),
    (4, (0, -1), (0, 1), "OVER-CONSTRAINED"),
)


@dataclass(frozen=True)
class ExampleOutcome:
    number: int
    d1: tuple[int, int]
    d2: tuple[int, int]
    wsv: str
    simple: bool
    legal: bool
    structure: str
    classes: str


@dataclass(frozen=True)
class ExamplesResult:
    outcomes: tuple[ExampleOutcome, ...]

    def report(self) -> str:
        table = Table(
            "Section 2.2 worked examples",
            ["ex", "d1", "d2", "WSV", "simple", "legal", "loop structure", "dims"],
        )
        for o in self.outcomes:
            table.add_row(
                o.number, str(o.d1), str(o.d2), o.wsv,
                "yes" if o.simple else "no",
                "yes" if o.legal else "no",
                o.structure, o.classes,
            )
        return heading("Examples 1-4 (Section 2.2)") + "\n" + table.render()


def _run_example(number: int, d1: tuple[int, int], d2: tuple[int, int]) -> ExampleOutcome:
    n = 8
    a = zpl.ones(zpl.Region.square(1, n), name="a", fluff=2)
    with zpl.covering(zpl.Region.square(3, n - 2)):
        with zpl.scan(execute=False) as block:
            a[...] = ((a.p @ d1) + (a.p @ d2)) / 2.0
    summary = wsv_of([d1, d2])
    try:
        compiled = compile_scan(block)
    except OverconstrainedScanError:
        return ExampleOutcome(
            number, d1, d2, repr(summary), summary.is_simple(),
            legal=False, structure="-", classes="-",
        )
    classes = ", ".join(
        f"dim{k}:{c.value}" for k, c in enumerate(compiled.loops.classes)
    )
    return ExampleOutcome(
        number, d1, d2, repr(summary), summary.is_simple(),
        legal=True, structure=repr(compiled.loops), classes=classes,
    )


def run(quick: bool = False) -> ExamplesResult:
    """Evaluate all four examples."""
    return ExamplesResult(
        tuple(_run_example(num, d1, d2) for num, d1, d2, _ in EXAMPLES)
    )
