"""Ablation: dynamism of the optimal block size (the paper's future work).

Sweeps b* across problem size, processor count and machine parameters, and
times the two ways of obtaining it: the closed-form Equation (1) versus a
full simulated sweep.  DESIGN.md lists this as ablation ABL-BS.
"""

from repro.apps import suite
from repro.machine import CRAY_T3E, pipelined_wavefront
from repro.models import model2


def test_closed_form_vs_search(bench):
    def optimum_table():
        rows = []
        for n in (129, 257, 513):
            for p in (4, 8, 16):
                m = model2(CRAY_T3E, n - 1, p, cols=n)
                rows.append((n, p, m.optimal_block_size()))
        return rows

    table = bench(optimum_table)
    # b* shrinks with p at fixed n.
    by_n = {n: [b for (nn, _, b) in table if nn == n] for n in (129, 257, 513)}
    for bs in by_n.values():
        assert bs == sorted(bs, reverse=True)


def test_simulated_block_size_sweep(bench):
    compiled = suite.get("single-stream").build(129)

    def sweep():
        times = {}
        for b in (1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128):
            times[b] = pipelined_wavefront(
                compiled, CRAY_T3E, n_procs=8, block_size=b, compute_values=False
            ).total_time
        return min(times, key=times.get)

    best = bench(sweep)
    predicted = model2(CRAY_T3E, 128, 8, cols=129).optimal_block_size()
    # The simulated optimum lands near the model's (within the sweep grid).
    assert abs(best - predicted) <= 16


def test_model_evaluation_cost(bench):
    # Equation (1) is effectively free next to simulation — quantify it.
    m = model2(CRAY_T3E, 256, 8)
    value = bench(m.optimal_block_size_continuous)
    assert value > 1.0
