"""Fig. 6 bench: trace-driven cache studies (per machine and full figure)."""

from repro.apps import tomcatv
from repro.cache import cache_study
from repro.experiments import fig6_cache
from repro.machine.params import CRAY_T3E, SGI_POWERCHALLENGE

N = 257


def _forward(n=N):
    return tomcatv.compile_forward(tomcatv.build(n))


def test_fig6_full_figure_quick(bench):
    result = bench(fig6_cache.run, quick=True)
    assert len(result.results) == 4  # 2 benchmarks x 2 machines


def test_fig6_tomcatv_t3e_component(bench):
    compiled = _forward()
    study = bench(cache_study, compiled, CRAY_T3E)
    assert study.speedup > 5.0


def test_fig6_tomcatv_powerchallenge_component(bench):
    # The 2-way LRU set-associative path (Python loop) — the slow engine.
    compiled = _forward(129)
    study = bench(cache_study, compiled, SGI_POWERCHALLENGE)
    assert study.speedup > 1.2


def test_fig6_trace_generation_only(bench):
    # Vectorised trace generation: should be milliseconds at n=257.
    from repro.cache import AddressSpace, best_locality_structure, fused_trace

    compiled = _forward()

    def trace():
        space = AddressSpace()
        loops = best_locality_structure(compiled)
        return fused_trace(compiled.statements, compiled.region, loops, space)

    out = bench(trace)
    assert out.size == compiled.region.size * (4 + len(_slots(compiled)))


def _slots(compiled):
    from repro.cache import statement_slots

    slots = []
    for stmt in compiled.statements:
        slots.extend(statement_slots(stmt)[:-1])  # reads only
    return slots
