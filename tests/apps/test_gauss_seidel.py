"""Tests for the Gauss-Seidel/SOR wavefront solver."""

import numpy as np
import pytest

from repro import zpl
from repro.apps import gauss_seidel, jacobi
from repro.compiler import compile_scan
from repro.machine import MachineParams, pipelined_wavefront, plan_wavefront
from repro.runtime import execute_loopnest, execute_vectorized, run_and_capture


class TestBuild:
    def test_defaults(self):
        state = gauss_seidel.build(10)
        assert state.omega == 1.0
        assert float(state.u[(1, 5)]) == 1.0  # hot edge
        assert float(state.u[(5, 5)]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            gauss_seidel.build(3)
        with pytest.raises(ValueError):
            gauss_seidel.build(10, omega=2.5)


class TestCompilation:
    def test_wsv_is_example2_shape(self):
        # Primed north + primed west: the paper's Example 2, WSV (-,-).
        state = gauss_seidel.build(10)
        compiled = gauss_seidel.compile_sweep(state)
        assert repr(compiled.wsv) == "(-,-)"
        assert compiled.loops.serial_dims == (0,)
        assert compiled.loops.wavefront_dims == (1,)

    def test_sweep_matches_classical_gauss_seidel(self):
        # Element-by-element lexicographic relaxation is the textbook
        # algorithm; the scan block must agree exactly.
        n = 8
        state = gauss_seidel.build(n)
        reference = state.u.to_numpy()
        gauss_seidel.step(state, engine=execute_vectorized)
        for i in range(1, n - 1):
            for j in range(1, n - 1):
                reference[i, j] = 0.25 * (
                    reference[i - 1, j]
                    + reference[i, j - 1]
                    + reference[i + 1, j]
                    + reference[i, j + 1]
                )
        np.testing.assert_allclose(state.u.to_numpy(), reference, rtol=1e-13)

    def test_engines_agree(self):
        state = gauss_seidel.build(9, omega=1.3)
        compiled = gauss_seidel.compile_sweep(state)
        oracle = run_and_capture(execute_loopnest, compiled, [state.u, state.f])
        fast = run_and_capture(execute_vectorized, compiled, [state.u, state.f])
        np.testing.assert_allclose(fast[0], oracle[0], rtol=1e-13)


class TestConvergence:
    def test_converges(self):
        state = gauss_seidel.build(12)
        sweeps = gauss_seidel.solve(state, tol=1e-6)
        assert sweeps < 10_000
        assert state.history[-1] < 1e-6

    def test_faster_than_jacobi(self):
        # The numerical payoff of expressing the wavefront: Gauss-Seidel
        # needs roughly half Jacobi's sweeps on the same problem.
        n, tol = 12, 1e-5
        gs_state = gauss_seidel.build(n)
        gs_sweeps = gauss_seidel.solve(gs_state, tol=tol)
        jac_state = jacobi.build(n)
        jac_sweeps = jacobi.solve(jac_state, tol=tol)
        assert gs_sweeps < 0.7 * jac_sweeps

    def test_sor_faster_than_gauss_seidel(self):
        n, tol = 16, 1e-6
        plain = gauss_seidel.build(n)
        plain_sweeps = gauss_seidel.solve(plain, tol=tol)
        omega = gauss_seidel.optimal_sor_omega(n)
        sor = gauss_seidel.build(n, omega=omega)
        sor_sweeps = gauss_seidel.solve(sor, tol=tol)
        assert sor_sweeps < 0.6 * plain_sweeps

    def test_solutions_agree(self):
        # Both orderings converge to the same discrete harmonic function.
        n, tol = 10, 1e-9
        gs_state = gauss_seidel.build(n)
        gauss_seidel.solve(gs_state, tol=tol)
        jac_state = jacobi.build(n)
        jacobi.solve(jac_state, tol=tol)
        np.testing.assert_allclose(
            gs_state.u.read(gs_state.interior),
            jac_state.a.read(jac_state.interior),
            atol=1e-6,
        )

    def test_optimal_omega_in_range(self):
        omega = gauss_seidel.optimal_sor_omega(32)
        assert 1.0 < omega < 2.0


class TestDistributed:
    def test_pipelined_sweep_matches_sequential(self):
        params = MachineParams(name="t", alpha=25.0, beta=1.0)
        state = gauss_seidel.build(14)
        compiled = gauss_seidel.compile_sweep(state)
        expected = run_and_capture(
            execute_vectorized, compiled, [state.u, state.f]
        )
        pipelined_wavefront(compiled, params, n_procs=3, block_size=3)
        np.testing.assert_allclose(state.u._data, expected[0], rtol=1e-13)

    def test_plan(self):
        state = gauss_seidel.build(10)
        plan = plan_wavefront(gauss_seidel.compile_sweep(state))
        assert plan.wavefront_dim == 1
        assert plan.chunk_dim == 0
        assert plan.boundary_rows == 1
