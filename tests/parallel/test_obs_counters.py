"""The real backend's trace counters match the analytic pipeline counts.

For a rank-1 chain of ``p`` workers running ``K = ceil(cols/b)`` pipeline
blocks each: every worker executes K blocks, every non-last worker sends
one token per block, every non-first worker receives one, and the bytes on
the wire are the boundary rows of every column exactly once per hop.
"""

import math
import os

import pytest

from repro.compiler import compile_scan
from repro.obs.phases import analyze_phases, residual_table
from repro.obs.trace import TRACE_ENV, Tracer
from repro.parallel import execute
from tests.conftest import record_tomcatv_block


def _traced_run(n=24, **kwargs):
    block, _ = record_tomcatv_block(n)
    compiled = compile_scan(block)
    run = execute(compiled, tracer=Tracer(), **kwargs)
    assert run.trace is not None
    return run, run.trace


class TestRank1Counters:
    def test_analytic_counts(self):
        p, b = 2, 4
        run, trace = _traced_run(grid=p, schedule="pipelined", block=b)
        cols = trace.meta["cols"]
        rows = trace.meta["rows"]
        m = trace.meta["boundary_rows"]
        k = math.ceil(cols / b)
        assert run.n_chunks == k
        assert trace.counter_total("blocks_executed") == p * k
        assert trace.counter_total("tokens_sent") == (p - 1) * k
        assert trace.counter_total("tokens_recv") == (p - 1) * k
        assert trace.counter_total("elements_computed") == rows * cols
        assert trace.counter_total("bytes_moved") == (p - 1) * m * cols * 8

    def test_meta_describes_run(self):
        run, trace = _traced_run(grid=2, schedule="pipelined", block=4)
        assert trace.clock == "wall"
        assert trace.meta["backend"] == "parallel"
        assert trace.meta["schedule"] == "pipelined"
        assert trace.meta["n_procs"] == 2
        assert trace.meta["pipeline_procs"] == 2
        assert trace.meta["block_size"] == 4
        assert trace.meta["wall_time"] == run.wall_time

    def test_per_worker_block_spans(self):
        run, trace = _traced_run(grid=2, schedule="pipelined", block=4)
        for proc in trace.procs():
            spans = [s for s in trace.worker_spans("compute") if s.proc == proc]
            assert len(spans) == run.n_chunks
            assert [s.args["block"] for s in spans] == list(range(run.n_chunks))
            assert all(s.args["elements"] > 0 for s in spans)
        widths = [
            s.args["width"]
            for s in trace.worker_spans("compute")
            if s.proc == 0
        ]
        assert sum(widths) == trace.meta["cols"]

    def test_compute_spans_tagged_with_plan_kind(self):
        # Tomcatv has one looped dim: the workers run flat kernel plans,
        # and every compute span says so.
        _, trace = _traced_run(grid=2, schedule="pipelined", block=4)
        plans = {s.args["plan"] for s in trace.worker_spans("compute")}
        assert plans == {"flat"}

    def test_skewed_blocks_tagged_skewed(self):
        # The alignment DP carries both dims: workers auto-select the
        # skewed plans inside their chunks and tag the spans accordingly.
        from repro.apps.alignment import build_score_block, nw_score_oracle

        a, b = "GATTACAGGTCC" * 6, "GCATGCUTACGG" * 6
        compiled, h = build_score_block(a, b)
        run = execute(
            compiled, grid=2, schedule="pipelined", block=18, tracer=Tracer()
        )
        plans = {s.args["plan"] for s in run.trace.worker_spans("compute")}
        assert plans == {"skewed"}
        assert h.to_numpy()[-1, -1] == nw_score_oracle(a, b)

    def test_phase_report_and_residuals_from_real_trace(self):
        _, trace = _traced_run(grid=2, schedule="pipelined", block=4)
        report = analyze_phases(trace)
        assert len(report.workers) == 2
        assert report.coverage == pytest.approx(1.0)
        rows = residual_table(trace)
        assert rows
        assert sum(r.width for r in rows) == trace.meta["cols"]
        assert all(r.predicted_compute >= 0 for r in rows)

    def test_naive_schedule_single_token(self):
        _, trace = _traced_run(grid=2, schedule="naive")
        assert trace.counter_total("blocks_executed") == 2
        assert trace.counter_total("tokens_sent") == 1


class TestRank2Counters:
    def test_independent_chains_exchange_nothing(self):
        # (1, 2): two single-stage chains — all compute, zero tokens.
        _, trace = _traced_run(n=16, grid=(1, 2), schedule="pipelined", block=4)
        rows, cols = trace.meta["rows"], trace.meta["cols"]
        assert trace.meta["pipeline_procs"] == 1
        assert trace.counter_total("tokens_sent") == 0
        assert trace.counter_total("tokens_recv") == 0
        assert trace.counter_total("elements_computed") == rows * cols

    @pytest.mark.skipif((os.cpu_count() or 1) < 4, reason="needs 4 cores")
    def test_mesh_2x2(self):
        run, trace = _traced_run(n=20, grid=(2, 2), schedule="pipelined", block=3)
        rows, cols = trace.meta["rows"], trace.meta["cols"]
        assert trace.meta["pipeline_procs"] == 2
        assert trace.counter_total("elements_computed") == rows * cols
        # Each chain: one sender, one receiver, one token per block.
        assert trace.counter_total("tokens_sent") == trace.counter_total(
            "tokens_recv"
        )
        assert trace.counter_total("tokens_sent") > 0
        assert trace.counter_total("bytes_moved") > 0
        assert len(trace.procs()) == 4


class TestDisabledByDefault:
    def test_no_trace_without_optin(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV, raising=False)
        block, _ = record_tomcatv_block(16)
        compiled = compile_scan(block)
        run = execute(compiled, grid=2, schedule="pipelined", block=8)
        assert run.trace is None
