"""The collective autotuner: α_c + β·s + γ·f measured and fed to Eq. (1)."""

import importlib

import pytest

from repro.compiler import compile_scan
from repro.errors import MachineError
from repro.machine import MachineParams
from repro.machine.schedules import plan_wavefront
from repro.models.pipeline_model import amortized_alpha, collective_model2, model2
from repro.parallel.autotune import (
    CollectiveParams,
    collective_effective_params,
    measure_multicast,
    tuned_block_size,
)
from tests.conftest import record_tomcatv_block

SYNTH = CollectiveParams(
    alpha_seconds=10e-6,
    beta_seconds=1e-9,
    gamma_seconds=2e-6,
    samples=((1, 1, 13e-6), (512, 1, 13.5e-6)),
)


def test_release_seconds_is_the_fitted_line():
    got = SYNTH.release_seconds(100, 4)
    assert got == pytest.approx(10e-6 + 100 * 1e-9 + 4 * 2e-6)


def test_per_edge_amortizes_over_fanout():
    release = SYNTH.release_seconds(64, 4)
    assert SYNTH.per_edge_seconds(64, 4) == pytest.approx(release / 4)
    # Fan-out 4 shares one stamp four ways: cheaper per edge than a
    # point-to-point release of the same boundary.
    assert SYNTH.per_edge_seconds(64, 4) < SYNTH.release_seconds(64, 1)
    # Fan-out 0/1 degenerate to the plain release cost.
    assert SYNTH.per_edge_seconds(64, 0) == SYNTH.release_seconds(64, 0)


def test_amortized_alpha_math():
    assert amortized_alpha(10e-6, 2e-6, 4) == pytest.approx(4.5e-6)
    # f = 1 degenerates to the point-to-point α_c + γ.
    assert amortized_alpha(10e-6, 2e-6, 1) == pytest.approx(12e-6)
    assert amortized_alpha(10e-6, 2e-6, 4) < amortized_alpha(10e-6, 2e-6, 1)


def test_collective_model2_predicts_cheaper_pipeline():
    params = MachineParams(name="synthetic", alpha=10.0, beta=0.01)
    plain = model2(params, n=256, p=4, boundary_rows=1)
    coll = collective_model2(params, n=256, p=4, boundary_rows=1, fanout=4, gamma=1.0)
    # (α_c + γf)/f = 3.5 < 10: every candidate block is predicted faster.
    assert coll.alpha == pytest.approx(3.5)
    for b in (4, 16, 64):
        assert coll.predicted_time(b) < plain.predicted_time(b)
    # Same compute term — only the α changed.
    assert coll.compute_time(16) == plain.compute_time(16)


def test_collective_effective_params_units():
    got = collective_effective_params(
        SYNTH, compute_seconds=1e-6, dispatch_seconds=4e-6, n_procs=4, fanout=2
    )
    per_edge = (10e-6 + 2 * 2e-6) / 2
    assert got.alpha == pytest.approx((per_edge + 1e-6) / 1e-6)
    assert got.beta == pytest.approx(1e-9 / 1e-6)


def test_collective_effective_params_rejects_bad_compute():
    with pytest.raises(MachineError, match="compute cost"):
        collective_effective_params(SYNTH, 0.0, 1e-6, 4)


def test_measure_multicast_fits_sane_constants():
    coll = measure_multicast(sizes=(1, 64), fanouts=(1, 2), cycles=30)
    assert coll.alpha_seconds > 0
    assert coll.beta_seconds >= 0
    assert coll.gamma_seconds >= 0
    assert len(coll.samples) == 4  # len(sizes) * len(fanouts)
    # The fitted intercept should be of the same order as the measurements
    # (individual samples are noisy on a loaded host, so bound against the
    # costliest one rather than the cheapest).
    costliest = max(t for _, _, t in coll.samples)
    assert coll.release_seconds(1, 1) <= 10 * costliest


def test_measure_multicast_needs_two_sizes():
    with pytest.raises(MachineError, match="at least two sizes"):
        measure_multicast(sizes=(64,), fanouts=(1,))


def test_tuned_block_size_multicast_uses_collective_params(monkeypatch):
    # A synthetic collective machine avoids the multi-process probe; the
    # point is the plumbing: fabric="multicast" must tune through
    # collective_effective_params and still return a sane block.
    autotune_mod = importlib.import_module("repro.parallel.autotune")
    monkeypatch.setattr(autotune_mod, "_HOST_COLL", SYNTH)
    block, _ = record_tomcatv_block(20)
    compiled = compile_scan(block)
    plan = plan_wavefront(compiled)
    b = tuned_block_size(compiled, 2, plan, fabric="multicast", fanout=2)
    assert isinstance(b, int)
    assert 1 <= b <= plan.region.extent(plan.chunk_dim)
