"""Smoke tests for the ``python -m repro.obs`` CLI."""

import json

import pytest

from repro.obs.__main__ import main
from repro.obs.capture import capture_simulator


class TestSummarize:
    def test_fresh_simulator_capture(self, capsys):
        rc = main(["summarize", "--backend", "simulator", "--n", "32",
                   "--procs", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "== simulator ==" in out
        assert "phase coverage" in out
        assert "counter blocks_executed" in out

    def test_saved_trace(self, tmp_path, capsys):
        _, trace = capture_simulator(n=32, procs=2)
        path = trace.save(tmp_path / "t.json")
        assert main(["summarize", str(path)]) == 0
        assert "fill" in capsys.readouterr().out


class TestExport:
    def test_explicit_output(self, tmp_path, capsys):
        out = tmp_path / "sim.chrome.json"
        rc = main(["export", "--backend", "simulator", "--n", "32",
                   "--procs", "2", "-o", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        assert "Perfetto" in capsys.readouterr().out

    def test_default_name_next_to_saved_trace(self, tmp_path, capsys):
        _, trace = capture_simulator(n=32, procs=2)
        path = trace.save(tmp_path / "run.json")
        assert main(["export", str(path)]) == 0
        assert (tmp_path / "run.chrome.json").exists()


class TestResiduals:
    def test_simulator_table(self, capsys):
        rc = main(["residuals", "--backend", "simulator", "--n", "32",
                   "--procs", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Eq.(1)" in out
        assert "ratio" in out


class TestArgParsing:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])
