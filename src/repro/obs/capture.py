"""One-call trace capture: run a suite kernel under tracing, either backend.

These helpers exist so the CLI (:mod:`repro.obs.__main__`), the benchmarks
and the tests can produce comparable traces with one line each.  Both
return ``(outcome, Trace)`` with the trace's ``meta["model"]`` filled in —
the simulator from its preset α/β, the real backend from the autotuner's
measured host constants — which is what the residual analysis keys on.
"""

from __future__ import annotations

from repro.apps import suite
from repro.machine.params import CRAY_T3E, MachineParams
from repro.machine.schedules import (
    DistributedOutcome,
    naive_wavefront,
    pipelined_wavefront,
    plan_wavefront,
)
from repro.obs.trace import Trace, Tracer


def _geometry(plan) -> tuple[int, int]:
    rows = plan.region.extent(plan.wavefront_dim)
    cols = (
        plan.region.extent(plan.chunk_dim) if plan.chunk_dim is not None else 1
    )
    return rows, cols


def capture_simulator(
    kernel: str = "single-stream",
    n: int = 48,
    procs: int = 4,
    block: int | None = None,
    schedule: str = "pipelined",
    params: MachineParams | None = None,
) -> tuple[DistributedOutcome, Trace]:
    """Run a suite kernel on the virtual-clock machine, traced.

    ``block=None`` picks the Eq. (1) optimum for ``params`` (default Cray
    T3E).  Values are not computed (``compute_values=False``): the trace
    is about time, and the virtual clock does not need the numpy work.
    """
    params = params or CRAY_T3E
    compiled = suite.get(kernel).build(n)
    plan = plan_wavefront(compiled)
    rows, cols = _geometry(plan)
    m = max(1, plan.boundary_rows)
    if block is None:
        if procs >= 2 and cols > 1:
            from repro.models.pipeline_model import model2

            block = model2(
                params, rows, procs, boundary_rows=m, cols=cols
            ).optimal_block_size(b_max=cols)
        else:
            block = cols
    tracer = Tracer()
    if schedule == "naive":
        outcome = naive_wavefront(
            compiled, params, n_procs=procs, compute_values=False, tracer=tracer
        )
    else:
        outcome = pipelined_wavefront(
            compiled,
            params,
            n_procs=procs,
            block_size=block,
            compute_values=False,
            tracer=tracer,
        )
    trace = Trace.from_tracer(
        tracer,
        clock="virtual",
        meta={
            "backend": "simulator",
            "kernel": kernel,
            "schedule": schedule,
            "n_procs": procs,
            "pipeline_procs": procs,
            "block_size": outcome.block_size,
            "n_chunks": outcome.n_chunks,
            "rows": rows,
            "cols": cols,
            "boundary_rows": plan.boundary_rows,
            "total_time": outcome.total_time,
            "params": params.name,
            "model": {
                "alpha": params.alpha,
                "beta": params.beta,
                "m": m,
                "unit_seconds": 1.0,
            },
        },
    )
    return outcome, trace


def capture_parallel(
    kernel: str = "single-stream",
    n: int = 32,
    procs: int = 2,
    block: int | None = None,
    schedule: str = "pipelined",
    measure_model: bool = True,
    start_method: str | None = None,
):
    """Run a suite kernel on the real multiprocess backend, traced.

    With ``measure_model=True`` the host's α/β/compute constants are
    measured first (cached pipe ping-pong plus one timed sequential run)
    and recorded in ``trace.meta["model"]`` so residuals compare against
    the same Eq. (1) instance the autotuner optimises.
    """
    from repro.parallel.autotune import (
        effective_params,
        host_comm,
        measure_block_overhead,
        measure_compute_cost,
        optimal_block_size,
    )
    from repro.parallel.executor import execute

    compiled = suite.get(kernel).build(n)
    plan = plan_wavefront(compiled)
    model_meta = None
    if measure_model:
        comm = host_comm(start_method)
        compute_seconds = measure_compute_cost(compiled, repeats=1)
        dispatch = measure_block_overhead(compiled, repeats=1)
        effective = effective_params(comm, compute_seconds, dispatch, procs)
        if block is None and schedule == "pipelined":
            block = optimal_block_size(plan, effective, procs)
        model_meta = {
            "alpha": effective.alpha,
            "beta": effective.beta,
            "m": max(1, plan.boundary_rows),
            "unit_seconds": compute_seconds,
        }
    tracer = Tracer()
    run = execute(
        compiled,
        grid=procs,
        schedule=schedule,
        block=block,
        start_method=start_method,
        tracer=tracer,
    )
    trace = run.trace
    trace.meta["kernel"] = kernel
    if model_meta is not None:
        trace.meta["model"] = model_meta
    return run, trace
