"""Sequence alignment: the dynamic-programming wavefronts of the paper's intro.

"Wavefront computations frequently appear in scientific applications,
including solvers and dynamic programming codes" — this module is the
dynamic-programming representative: Needleman-Wunsch global alignment and
Smith-Waterman local alignment.  The DP recurrence

    H[i,j] = max(H[i-1,j-1] + s(a_i, b_j), H[i-1,j] - gap, H[i,j-1] - gap)

depends on north, west and northwest neighbours: a classic two-direction
wavefront, written as a single scan block over a precomputed substitution
score array.  Traceback is ordinary sequential code.

Both dimensions of the DP carry dependences, so this workload is exactly
what the hyperplane-skewed kernel plans (:mod:`repro.runtime.kernels`) were
built for: the default ``engine="kernel"`` sweeps anti-diagonals with one
fused numpy kernel each (O(n+m) dispatches) instead of interpreting O(n·m)
points.  The ``engine`` parameters below accept either an engine *name*
(``"kernel"``/``"flat"``/``"interp"``) or any callable with the
:func:`~repro.runtime.vectorized.execute_vectorized` signature.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro import zpl
from repro.compiler import compile_scan
from repro.compiler.lowering import CompiledScan
from repro.runtime import PlanRunner, execute_vectorized
from repro.zpl import NORTH, NORTHWEST, WEST, Region, ZArray


@dataclass(frozen=True)
class AlignmentResult:
    """Score and aligned strings (gaps as ``-``)."""

    score: float
    aligned_a: str
    aligned_b: str


def _as_engine(engine):
    """Normalise ``engine``: a name selects :func:`execute_vectorized`."""
    if callable(engine):
        return engine
    return lambda compiled, name=engine: execute_vectorized(
        compiled, engine=name
    )


def _substitution_scores(
    a: str, b: str, match: float, mismatch: float
) -> np.ndarray:
    arr_a = np.frombuffer(a.encode("ascii"), dtype=np.uint8)[:, None]
    arr_b = np.frombuffer(b.encode("ascii"), dtype=np.uint8)[None, :]
    return np.where(arr_a == arr_b, match, mismatch).astype(float)


def build_score_block(
    a: str,
    b: str,
    match: float = 2.0,
    mismatch: float = -1.0,
    gap: float = 1.0,
    local: bool = False,
) -> tuple[CompiledScan, ZArray]:
    """Record and compile the DP scan block; returns (compiled, H matrix).

    The H matrix is declared over ``[0..len(a), 0..len(b)]``; row/column 0
    hold the standard boundary (gap penalties for global, zero for local).
    """
    if not a or not b:
        raise ValueError("sequences must be non-empty")
    la, lb = len(a), len(b)
    h_region = Region.of((0, la), (0, lb))
    h = zpl.ZArray(h_region, name="H")
    scores = zpl.ZArray(h_region, name="S")
    scores.write(Region.of((1, la), (1, lb)), _substitution_scores(a, b, match, mismatch))
    if local:
        h.fill(0.0)
    else:
        h.fill(0.0)
        h.write(Region.of((0, la), (0, 0)), -gap * np.arange(la + 1.0)[:, None])
        h.write(Region.of((0, 0), (0, lb)), -gap * np.arange(lb + 1.0)[None, :])

    inner = Region.of((1, la), (1, lb))
    with zpl.covering(inner):
        with zpl.scan(name="alignment", execute=False) as block:
            best = zpl.maximum(
                (h.p @ NORTHWEST) + scores,
                zpl.maximum((h.p @ NORTH) - gap, (h.p @ WEST) - gap),
            )
            h[...] = zpl.maximum(best, 0.0) if local else best
    return compile_scan(block), h


# ---------------------------------------------------------------------------
# Batched scoring: many same-shape pairs through ONE stacked compiled plan
# ---------------------------------------------------------------------------
#: Cached stacked batch plans; each pins two float arrays of
#: ``capacity × (la+1) × (lb+1)``, so the cache stays deliberately small.
_BATCH_PLAN_CAP = 16

#: Per-array element budget for one stacked batch (keeps a batch of long
#: sequences from ballooning: capacity is clamped so that
#: ``capacity · (la+1) · (lb+1)`` stays under this).
_BATCH_ELEMENT_BUDGET = 1 << 22


@dataclass
class _BatchPlan:
    """One cached rank-3 stacked DP plan: ``capacity`` pairs of one shape.

    Dimension 0 is the *pair* index — completely parallel, so the skewed
    kernel plans execute every pair's anti-diagonal in one fused numpy call
    per hyperplane: O(la+lb) dispatches for the whole batch instead of per
    pair.  ``lock`` serialises use of the plan's arrays (they are shared
    mutable state across executes).
    """

    compiled: CompiledScan
    h: ZArray
    s: ZArray
    capacity: int
    la: int
    lb: int
    local: bool
    runners: dict = field(default_factory=dict)
    lock: threading.Lock = field(default_factory=threading.Lock)

    def execute(self, engine, items: int) -> None:
        """Run the stacked plan: amortised runner for names, verbatim for
        callable engines."""
        if callable(engine) and engine is not execute_vectorized:
            engine(self.compiled)
            return
        name = engine if isinstance(engine, str) else None
        runner = self.runners.get(name)
        if runner is None:
            runner = PlanRunner(self.compiled, name)
            self.runners[name] = runner
        runner.run(items)


_BATCH_PLANS: "OrderedDict[tuple, _BatchPlan]" = OrderedDict()
_BATCH_PLANS_LOCK = threading.Lock()


def _batch_capacity(k: int, la: int, lb: int) -> int:
    """Stacked-slab capacity for a group of ``k`` pairs of shape (la, lb).

    Rounded up to a power of two so repeated traffic at varying batch sizes
    hits a handful of cached plans, then clamped by the element budget.
    """
    cap = 1 << max(0, k - 1).bit_length()
    budget = max(1, _BATCH_ELEMENT_BUDGET // ((la + 1) * (lb + 1)))
    return max(1, min(cap, budget))


def _build_batch_plan(
    capacity: int, la: int, lb: int, match: float, mismatch: float,
    gap: float, local: bool,
) -> _BatchPlan:
    store = Region.of((0, capacity - 1), (0, la), (0, lb))
    h = zpl.ZArray(store, name="H")
    s = zpl.ZArray(store, name="S")
    h.fill(0.0)
    if not local:
        h.write(
            Region.of((0, capacity - 1), (0, la), (0, 0)),
            np.broadcast_to(
                -gap * np.arange(la + 1.0)[None, :, None], (capacity, la + 1, 1)
            ),
        )
        h.write(
            Region.of((0, capacity - 1), (0, 0), (0, lb)),
            np.broadcast_to(
                -gap * np.arange(lb + 1.0)[None, None, :], (capacity, 1, lb + 1)
            ),
        )
    inner = Region.of((0, capacity - 1), (1, la), (1, lb))
    with zpl.covering(inner):
        with zpl.scan(name="alignment_batch", execute=False) as block:
            best = zpl.maximum(
                (h.p @ (0, -1, -1)) + s,
                zpl.maximum((h.p @ (0, -1, 0)) - gap, (h.p @ (0, 0, -1)) - gap),
            )
            h[...] = zpl.maximum(best, 0.0) if local else best
    return _BatchPlan(compile_scan(block), h, s, capacity, la, lb, local)


def _batch_plan(
    capacity: int, la: int, lb: int, match: float, mismatch: float,
    gap: float, local: bool,
) -> _BatchPlan:
    key = (capacity, la, lb, match, mismatch, gap, local)
    with _BATCH_PLANS_LOCK:
        plan = _BATCH_PLANS.get(key)
        if plan is not None:
            _BATCH_PLANS.move_to_end(key)
            return plan
        plan = _build_batch_plan(capacity, la, lb, match, mismatch, gap, local)
        _BATCH_PLANS[key] = plan
        while len(_BATCH_PLANS) > _BATCH_PLAN_CAP:
            _BATCH_PLANS.popitem(last=False)
        return plan


def _check_pair(a: str, b: str) -> None:
    if not a or not b:
        raise ValueError("sequences must be non-empty")
    try:
        a.encode("ascii")
        b.encode("ascii")
    except UnicodeEncodeError as exc:
        raise ValueError(f"sequences must be ASCII: {exc}") from None


def batch_tables(
    pairs,
    match: float = 2.0,
    mismatch: float = -1.0,
    gap: float = 1.0,
    local: bool = False,
    engine=execute_vectorized,
) -> np.ndarray:
    """Fill the DP tables of same-shape pairs with one stacked compiled plan.

    All pairs must share ``(len(a), len(b))``; the result is a
    ``(len(pairs), la+1, lb+1)`` float array of filled tables, in input
    order.  This is the serving layer's batching hook: one fingerprinted
    plan, one kernel dispatch, ``len(pairs)`` answers.  Groups larger than
    the cached slab capacity are filled in capacity-sized waves.
    """
    if not pairs:
        raise ValueError("batch_tables needs at least one pair")
    for a, b in pairs:
        _check_pair(a, b)
    la, lb = len(pairs[0][0]), len(pairs[0][1])
    for a, b in pairs:
        if (len(a), len(b)) != (la, lb):
            raise ValueError(
                f"batch_tables pairs must share one shape; got "
                f"({len(a)}, {len(b)}) alongside ({la}, {lb})"
            )
    capacity = _batch_capacity(len(pairs), la, lb)
    plan = _batch_plan(capacity, la, lb, match, mismatch, gap, local)
    out = np.empty((len(pairs), la + 1, lb + 1), dtype=float)
    inner = Region.of((0, capacity - 1), (1, la), (1, lb))
    with plan.lock:
        s_view = plan.s.read(inner)  # a view: per-pair writes land in storage
        h_view = plan.h.read(plan.h.region)
        for start in range(0, len(pairs), capacity):
            wave = pairs[start:start + capacity]
            for k, (a, b) in enumerate(wave):
                s_view[k] = _substitution_scores(a, b, match, mismatch)
            plan.execute(engine, len(wave))
            out[start:start + len(wave)] = h_view[: len(wave)]
    return out


def score_many(
    pairs,
    match: float = 2.0,
    mismatch: float = -1.0,
    gap: float = 1.0,
    local: bool = False,
    engine=execute_vectorized,
) -> list[float]:
    """Batch scores for many pairs, one compiled plan per distinct shape.

    Pairs are grouped by ``(len(a), len(b))``; each group runs through
    :func:`batch_tables` (one stacked kernel dispatch per capacity wave) and
    scores come back in input order.  Global (Needleman-Wunsch) scores by
    default; ``local=True`` gives Smith-Waterman local scores.
    """
    groups: dict[tuple[int, int], list[int]] = {}
    for i, (a, b) in enumerate(pairs):
        _check_pair(a, b)
        groups.setdefault((len(a), len(b)), []).append(i)
    scores = [0.0] * len(pairs)
    for (la, lb), idxs in groups.items():
        tables = batch_tables(
            [pairs[i] for i in idxs], match, mismatch, gap, local, engine
        )
        for j, i in enumerate(idxs):
            scores[i] = (
                float(tables[j].max()) if local else float(tables[j][la, lb])
            )
    return scores


def _traceback_global(
    h: np.ndarray, a: str, b: str, scores: np.ndarray, gap: float
) -> tuple[str, str]:
    i, j = len(a), len(b)
    out_a: list[str] = []
    out_b: list[str] = []
    while i > 0 or j > 0:
        if i > 0 and j > 0 and np.isclose(h[i, j], h[i - 1, j - 1] + scores[i - 1, j - 1]):
            out_a.append(a[i - 1])
            out_b.append(b[j - 1])
            i, j = i - 1, j - 1
        elif i > 0 and np.isclose(h[i, j], h[i - 1, j] - gap):
            out_a.append(a[i - 1])
            out_b.append("-")
            i -= 1
        else:
            out_a.append("-")
            out_b.append(b[j - 1])
            j -= 1
    return "".join(reversed(out_a)), "".join(reversed(out_b))


def needleman_wunsch(
    a: str,
    b: str,
    match: float = 2.0,
    mismatch: float = -1.0,
    gap: float = 1.0,
    engine=execute_vectorized,
) -> AlignmentResult:
    """Global alignment via the scan-block DP wavefront.

    Delegates the DP fill to the batched plan cache (:func:`batch_tables`
    with a single pair), so repeated calls at one shape reuse one compiled
    plan; traceback stays ordinary sequential code.
    """
    table = batch_tables([(a, b)], match, mismatch, gap, False, engine)[0]
    scores = _substitution_scores(a, b, match, mismatch)
    aligned_a, aligned_b = _traceback_global(table, a, b, scores, gap)
    return AlignmentResult(float(table[len(a), len(b)]), aligned_a, aligned_b)


def smith_waterman_score(
    a: str,
    b: str,
    match: float = 2.0,
    mismatch: float = -1.0,
    gap: float = 1.0,
    engine=execute_vectorized,
) -> float:
    """Local alignment score (max over the clamped DP table).

    Delegates to :func:`score_many` — a single-pair batch — so repeated
    calls at one shape share a cached compiled plan.
    """
    return score_many([(a, b)], match, mismatch, gap, local=True, engine=engine)[0]


def nw_score_oracle(
    a: str, b: str, match: float = 2.0, mismatch: float = -1.0, gap: float = 1.0
) -> float:
    """Plain-python Needleman-Wunsch score for differential testing."""
    la, lb = len(a), len(b)
    h = [[0.0] * (lb + 1) for _ in range(la + 1)]
    for i in range(1, la + 1):
        h[i][0] = -gap * i
    for j in range(1, lb + 1):
        h[0][j] = -gap * j
    for i in range(1, la + 1):
        for j in range(1, lb + 1):
            s = match if a[i - 1] == b[j - 1] else mismatch
            h[i][j] = max(h[i - 1][j - 1] + s, h[i - 1][j] - gap, h[i][j - 1] - gap)
    return h[la][lb]
