"""Fig. 7 bench: the pipelined-vs-naive parallel speedup campaign."""

from repro.experiments import fig7_pipeline_speedup


def test_fig7_quick_campaign(bench):
    result = bench(fig7_pipeline_speedup.run, quick=True)
    for r in result.results:
        assert r.whole_speedup > 1.0


def test_fig7_paper_scale_campaign(bench):
    result = bench(fig7_pipeline_speedup.run)
    # Grey bars approach p; Tomcatv whole reaches the multi-x range.
    top = result.lookup("tomcatv", "Cray T3E", 16)
    assert top.wavefronts[0].speedup > 6.0
    assert top.whole_speedup > 2.0
    low = result.lookup("simple", "Cray T3E", 2)
    assert 1.0 < low.whole_speedup < 1.2
