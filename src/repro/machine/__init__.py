"""The simulated distributed-memory machine.

Layers, bottom up:

* :mod:`repro.machine.event` — deterministic discrete-event simulation core;
* :mod:`repro.machine.params` — α+β communication model + cache geometry,
  with ``CRAY_T3E`` / ``SGI_POWERCHALLENGE`` / ``HYPOTHETICAL_HIGH_BETA``
  presets calibrated against the paper's reported numbers;
* :mod:`repro.machine.grid` / :mod:`repro.machine.distribution` — processor
  meshes and block data distributions;
* :mod:`repro.machine.comm` / :mod:`repro.machine.simulator` — the
  message-passing fabric and per-run machine façade;
* :mod:`repro.machine.schedules` — naive, pipelined and transpose wavefront
  schedules plus the fully parallel schedule, all operating on compiled scan
  blocks and producing both values and virtual times.
"""

from repro.machine.event import Simulator, Store, Timeout
from repro.machine.params import (
    CacheGeometry,
    MachineParams,
    CRAY_T3E,
    SGI_POWERCHALLENGE,
    HYPOTHETICAL_HIGH_BETA,
    PRESETS,
)
from repro.machine.grid import ProcessorGrid
from repro.machine.distribution import BlockMap
from repro.machine.comm import Activity, Endpoint, Message, Network, ProcStats, RecvRequest
from repro.machine.simulator import Machine, RunResult
from repro.machine.gantt import render_gantt
from repro.machine.collectives import allreduce, barrier, broadcast, reduce
from repro.machine.program import (
    ProgramRunResult,
    WavefrontSpec,
    optimal_spec,
    simulate_program,
)
from repro.machine.schedules import (
    DistributedOutcome,
    WavefrontPlan,
    plan_wavefront,
    pipelined_wavefront,
    pipelined_wavefront_mesh,
    naive_wavefront,
    parallel_schedule,
    transpose_wavefront,
    HALO_TAG,
)

__all__ = [
    "Simulator",
    "Store",
    "Timeout",
    "CacheGeometry",
    "MachineParams",
    "CRAY_T3E",
    "SGI_POWERCHALLENGE",
    "HYPOTHETICAL_HIGH_BETA",
    "PRESETS",
    "ProcessorGrid",
    "BlockMap",
    "Activity",
    "Endpoint",
    "RecvRequest",
    "render_gantt",
    "allreduce",
    "barrier",
    "broadcast",
    "reduce",
    "ProgramRunResult",
    "WavefrontSpec",
    "optimal_spec",
    "simulate_program",
    "Message",
    "Network",
    "ProcStats",
    "Machine",
    "RunResult",
    "DistributedOutcome",
    "WavefrontPlan",
    "plan_wavefront",
    "pipelined_wavefront",
    "pipelined_wavefront_mesh",
    "naive_wavefront",
    "parallel_schedule",
    "transpose_wavefront",
    "HALO_TAG",
]
