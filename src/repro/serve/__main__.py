"""``python -m repro.serve`` — run a server, or the CI smoke check.

Two subcommands:

* ``serve`` (the default) — start an HTTP server and run until
  interrupted.  ``--trace PATH`` saves the recorded ``serve_request`` /
  ``serve_batch`` spans as a :mod:`repro.obs` trace on shutdown, ready
  for ``python -m repro.obs summarize PATH``.
* ``smoke`` — start a server on an ephemeral port, drive it through the
  serving contract (correct scores, a coalesced batch, a malformed
  payload → 400, a flood against a tiny queue → 429 + ``Retry-After``,
  clean shutdown) and exit non-zero on any violation.  ``--bench-out``
  additionally runs a small stepped-QPS measurement and writes
  ``BENCH_serve.json`` — the artifact CI uploads.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from repro.obs import Tracer
from repro.serve.server import ServeApp, ServeConfig, serve_forever


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Async batch-serving front end for wavefront programs.",
    )
    sub = parser.add_subparsers(dest="command")

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=8077,
                       help="TCP port (0 picks an ephemeral one)")
        p.add_argument("--window", type=float, default=0.005,
                       help="coalescing window in seconds")
        p.add_argument("--batch-max", type=int, default=32,
                       help="largest fused dispatch")
        p.add_argument("--max-queue", type=int, default=128,
                       help="admission bound on pending requests")
        p.add_argument("--timeout", type=float, default=30.0,
                       help="per-request deadline in seconds")
        p.add_argument("--policy", choices=("fifo", "sjf"), default="fifo")
        p.add_argument("--grid", type=int, default=None,
                       help="worker-pool size (default: in-process compute)")
        p.add_argument("--trace", default=None, metavar="PATH",
                       help="save an obs trace of the run on shutdown")

    run = sub.add_parser("serve", help="run a server until interrupted")
    add_common(run)
    smoke = sub.add_parser("smoke", help="self-checking CI smoke run")
    add_common(smoke)
    smoke.add_argument("--bench-out", default=None, metavar="DIR",
                       help="also write BENCH_serve.json into DIR")
    return parser


def _config(args: argparse.Namespace, **overrides) -> ServeConfig:
    values = dict(
        host=args.host, port=args.port, window=args.window,
        batch_max=args.batch_max, max_queue=args.max_queue,
        timeout=args.timeout, policy=args.policy, grid=args.grid,
        tracer=Tracer() if args.trace else None,
    )
    values.update(overrides)
    return ServeConfig(**values)


def _run_serve(args: argparse.Namespace) -> int:
    config = _config(args)

    def ready(app: ServeApp) -> None:
        print(f"repro.serve listening on http://{config.host}:{app.port} "
              f"(policy={config.policy}, window={config.window * 1e3:g}ms, "
              f"batch_max={config.batch_max}, queue={config.max_queue})",
              flush=True)
        ready.app = app

    ready.app = None
    try:
        asyncio.run(serve_forever(config, ready))
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    if args.trace and ready.app is not None:
        path = ready.app.trace().save(args.trace)
        print(f"trace written to {path}", flush=True)
    return 0


async def _smoke(args: argparse.Namespace) -> int:
    from repro.apps.alignment import nw_score_oracle
    from repro.serve.client import (
        ServeClient, run_open_loop, summarize,
    )

    failures: list[str] = []

    def check(ok: bool, what: str) -> None:
        print(("ok   " if ok else "FAIL ") + what, flush=True)
        if not ok:
            failures.append(what)

    # A deliberately tiny queue so the flood below must shed.
    config = _config(args, port=0, max_queue=8, batch_max=8, window=0.01)
    app = ServeApp(config)
    await app.start()
    host, port = config.host, app.port
    try:
        async with ServeClient(host, port) as client:
            status, _, body = await client.get("/healthz")
            check(status == 200 and body.get("ok") is True, "healthz answers")

            # Correctness: a concurrent same-shape burst, scores vs oracle.
            pairs = [("GATTACA", "GCATGCU"), ("ACGTACG", "TACGTAC"),
                     ("AAAACCC", "AAACCCC"), ("GATTACA", "GCATGCU")]
            bursts = await asyncio.gather(*(
                _score(host, port, "nw", a, b) for a, b in pairs
            ))
            good = all(
                s == 200 and abs(r["score"] - nw_score_oracle(a, b, 2.0, -1.0, 1.0))
                < 1e-9
                for (s, r), (a, b) in zip(bursts, pairs)
            )
            check(good, "concurrent nw scores match the oracle")
            check(any(r.get("batch", 0) > 1 for _, r in bursts),
                  "same-shape burst coalesced into a batch")

            status, body = await _score(host, port, "sw", "GGTTGACTA", "TGTTACGG")
            check(status == 200 and body["score"] > 0, "sw score served")

            # Malformed payloads are typed 400s, and do not poison the next.
            status, _, body = await client.post("/v1/align", {"kind": "nope"})
            check(status == 400 and body.get("error") == "bad_request",
                  "malformed payload yields typed 400")
            status, _, _ = await client.post("/v1/align", None)
            check(status == 400, "missing body yields 400")
            status, body = await _score(host, port, "nw", "ACGT", "ACG")
            check(status == 200, "requests after a malformed one still succeed")

        # Overload: a burst far beyond the queue bound must shed with 429s.
        big = "ACGT" * 128
        flood = await asyncio.gather(*(
            _score(host, port, "nw", big, big) for _ in range(48)
        ))
        shed = [r for s, r in flood if s == 429]
        served = sum(1 for s, _ in flood if s == 200)
        check(bool(shed), f"flood shed {len(shed)}/48 with 429 ({served} served)")
        rejected = next((r for s, r in flood if s == 429), {})
        check("retry_after" in rejected, "429 carries a retry_after hint")

        async with ServeClient(host, port) as client:
            status, _, metrics = await client.get("/metrics")
            check(
                status == 200
                and metrics["requests"]["completed"] >= 5
                and metrics["batches"]["dispatched"] >= 1,
                "metrics endpoint reports the run",
            )

        if args.bench_out:
            samples = await run_open_loop(
                host, port, lambda i: {"kind": "nw", "a": "ACGTACGT",
                                       "b": "TACGTACG"},
                qps=50, duration=1.0,
            )
            from repro.util.benchjson import write_bench
            record = {"mode": "smoke", "qps": 50, **summarize(samples, 1.0)}
            path = write_bench("serve", [record],
                               meta={"source": "repro.serve smoke"},
                               directory=args.bench_out)
            print(f"bench written to {path}", flush=True)
    finally:
        await app.stop()
    check(app.batcher.depth == 0, "clean shutdown with an empty queue")
    if args.trace:
        app.trace().save(args.trace)
    print(json.dumps({"failures": failures}), flush=True)
    return 1 if failures else 0


async def _score(host: str, port: int, kind: str, a: str, b: str):
    from repro.serve.client import ServeClient

    async with ServeClient(host, port) as client:
        status, _headers, body = await client.post(
            "/v1/align", {"kind": kind, "a": a, "b": b}
        )
        return status, body


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # "serve" is the default subcommand: `python -m repro.serve --port N`
    # works without naming it (but `-h` still shows the top-level help).
    if not argv or argv[0] not in ("serve", "smoke", "-h", "--help"):
        argv = ["serve", *argv]
    args = _build_parser().parse_args(argv)
    if args.command == "smoke":
        return asyncio.run(_smoke(args))
    return _run_serve(args)


if __name__ == "__main__":
    sys.exit(main())
