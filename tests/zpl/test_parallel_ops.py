"""Tests for the extended parallel operators: prefix scan and wrap shift."""

import numpy as np
import pytest

from repro import zpl
from repro.compiler import compile_scan
from repro.errors import ExpressionError, PrimedOperandError
from repro.runtime import execute_vectorized
from repro.zpl import prefix_scan, wrap


@pytest.fixture
def grid():
    a = zpl.from_numpy(np.arange(9.0).reshape(3, 3), base=1, name="a")
    out = zpl.zeros(a.region, name="out")
    return a, out


class TestPrefixScan:
    def test_inclusive_sum(self, grid):
        a, out = grid
        with zpl.covering(a.region):
            out[...] = prefix_scan(a, "+", dim=0)
        np.testing.assert_array_equal(
            out.to_numpy(), np.cumsum(a.to_numpy(), axis=0)
        )

    def test_exclusive_sum(self, grid):
        a, out = grid
        with zpl.covering(a.region):
            out[...] = prefix_scan(a, "+", dim=1, exclusive=True)
        expected = np.zeros((3, 3))
        expected[:, 1:] = np.cumsum(a.to_numpy(), axis=1)[:, :-1]
        np.testing.assert_array_equal(out.to_numpy(), expected)

    def test_max_scan(self, grid):
        a, out = grid
        values = np.array([[3.0, 1.0, 2.0]] * 3)
        a.load(values)
        with zpl.covering(a.region):
            out[...] = prefix_scan(a, "max", dim=1)
        np.testing.assert_array_equal(
            out.to_numpy(), np.maximum.accumulate(values, axis=1)
        )

    def test_exclusive_identity_elements(self, grid):
        a, out = grid
        a.fill(5.0)
        with zpl.covering(a.region):
            out[...] = prefix_scan(a, "*", dim=0, exclusive=True)
        assert np.all(out.to_numpy()[0] == 1.0)  # multiplicative identity

    def test_scan_over_subregion(self, grid):
        # The prefix runs over the covering region, not the whole array.
        a, out = grid
        sub = zpl.Region.of((2, 3), (1, 3))
        with zpl.covering(sub):
            out[...] = prefix_scan(a, "+", dim=0)
        np.testing.assert_array_equal(
            out.read(sub), np.cumsum(a.read(sub), axis=0)
        )

    def test_unknown_op_rejected(self, grid):
        a, _ = grid
        with pytest.raises(ExpressionError):
            prefix_scan(a, "median", dim=0)

    def test_bad_dim_rejected(self, grid):
        a, out = grid
        with pytest.raises(ExpressionError):
            with zpl.covering(a.region):
                out[...] = prefix_scan(a, "+", dim=5)

    def test_hoisted_from_scan_block(self, grid):
        # Inside a scan block the prefix is computed once, at block entry.
        a, out = grid
        b = zpl.ones(a.region, name="b", fluff=1)
        with zpl.covering(zpl.Region.of((2, 3), (1, 3))):
            with zpl.scan(execute=False) as block:
                b[...] = (b.p @ zpl.NORTH) + prefix_scan(a, "+", dim=1)
        compiled = compile_scan(block)
        assert len(compiled.hoisted) == 1
        execute_vectorized(compiled)
        assert np.all(np.isfinite(b.to_numpy()))

    def test_primed_operand_rejected(self, grid):
        a, _ = grid
        b = zpl.ones(a.region, name="b", fluff=1)
        with zpl.covering(zpl.Region.of((2, 3), (1, 3))):
            with zpl.scan(execute=False) as block:
                b[...] = prefix_scan(b.p @ zpl.NORTH, "+", dim=0)
        with pytest.raises(PrimedOperandError):
            compile_scan(block)


class TestWrap:
    def test_wrap_north_is_periodic(self, grid):
        a, out = grid
        with zpl.covering(a.region):
            out[...] = wrap(a, zpl.NORTH)
        values = a.to_numpy()
        np.testing.assert_array_equal(out.to_numpy()[0], values[2])
        np.testing.assert_array_equal(out.to_numpy()[1], values[0])

    def test_wrap_diagonal(self, grid):
        a, out = grid
        with zpl.covering(a.region):
            out[...] = wrap(a, zpl.SOUTHEAST)
        values = a.to_numpy()
        assert out.to_numpy()[0, 0] == values[1, 1]  # plain shifted read
        assert out.to_numpy()[2, 2] == values[0, 0]  # wrapped at the edge

    def test_periodic_stencil_conserves_sum(self, grid):
        # A periodic averaging stencil neither creates nor destroys mass.
        a, out = grid
        with zpl.covering(a.region):
            out[...] = (wrap(a, zpl.NORTH) + wrap(a, zpl.SOUTH)
                        + wrap(a, zpl.WEST) + wrap(a, zpl.EAST)) / 4.0
        assert out.to_numpy().sum() == pytest.approx(a.to_numpy().sum())

    def test_wrap_requires_plain_ref(self, grid):
        a, _ = grid
        with pytest.raises(ExpressionError):
            wrap(a + 1.0, zpl.NORTH)
        with pytest.raises(ExpressionError):
            wrap(a.p, zpl.NORTH)
        with pytest.raises(ExpressionError):
            wrap(a @ zpl.NORTH, zpl.NORTH)

    def test_wrap_of_block_written_array_rejected(self, grid):
        a, _ = grid
        b = zpl.ones(a.region, name="b", fluff=1)
        with zpl.covering(zpl.Region.of((2, 3), (1, 3))):
            with zpl.scan(execute=False) as block:
                b[...] = (b.p @ zpl.NORTH) + wrap(b, zpl.SOUTH)
        with pytest.raises(PrimedOperandError, match="cannot be hoisted"):
            compile_scan(block)

    def test_wrap_of_readonly_array_in_scan_ok(self, grid):
        a, _ = grid
        b = zpl.ones(a.region, name="b", fluff=1)
        with zpl.covering(zpl.Region.of((2, 3), (1, 3))):
            with zpl.scan(execute=False) as block:
                b[...] = (b.p @ zpl.NORTH) + wrap(a, zpl.SOUTH)
        compiled = compile_scan(block)
        assert len(compiled.hoisted) == 1
        execute_vectorized(compiled)
