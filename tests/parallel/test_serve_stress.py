"""Concurrent submissions are safe: plan LRU + shared-segment reuse.

The serving layer submits batches from threads; two batches with the same
fingerprint in flight must not interleave the pool's fingerprint-keyed plan
cache or the ``SharedArrayPool.refresh``/``gather`` cycle.  ``execute()``
serialises behind the pool's submission lock — these tests hammer that path
from many threads and check the caches stayed consistent and the pool
healthy.
"""

import threading

import numpy as np

from repro.compiler import compile_scan
from repro.parallel import WorkerPool
from repro.runtime import execute_vectorized, run_and_capture
from tests.conftest import record_tomcatv_block


def _compiled(n=16):
    block, arrays = record_tomcatv_block(n)
    return compile_scan(block), arrays


def _hammer(threads, n_threads=4):
    errors = []

    def wrap(fn):
        def run():
            try:
                fn()
            except BaseException as exc:  # re-raised in the main thread
                errors.append(exc)
        return run

    workers = [threading.Thread(target=wrap(fn)) for fn in threads]
    for t in workers:
        t.start()
    for t in workers:
        t.join(timeout=120)
    return errors


def test_concurrent_same_fingerprint_submissions():
    compiled, arrays = _compiled()
    with WorkerPool(2, timeout=60.0) as pool:
        def submit():
            for _ in range(4):
                pool.execute(compiled, block=4)

        errors = _hammer([submit] * 4)
        assert not errors, errors
        assert not pool.broken
        # One fingerprint: a single miss + segment build, everything after
        # is a refresh of the same cached entry — no duplicate shipping.
        assert pool.stats["executes"] == 16
        assert pool.stats["plan_misses"] == 1
        assert pool.stats["plan_hits"] == 15
        assert pool.stats["blobs_shipped"] == 2  # one per worker, ever

        # The caches survived the stampede: from the arrays' current state,
        # a pooled run still matches the sequential engine bit-for-bit.
        oracle = run_and_capture(execute_vectorized, compiled, arrays)

        def engine(c):
            pool.execute(c, block=4)

        pooled = run_and_capture(engine, compiled, arrays)
        for want, got in zip(oracle, pooled):
            np.testing.assert_array_equal(got, want)


def test_concurrent_mixed_fingerprint_submissions():
    c1, _ = _compiled(16)
    c2, _ = _compiled(20)
    with WorkerPool(2, timeout=60.0) as pool:
        def submit_1():
            for _ in range(3):
                pool.execute(c1, block=4)

        def submit_2():
            for _ in range(3):
                pool.execute(c2, block=4)

        errors = _hammer([submit_1, submit_2, submit_1, submit_2])
        assert not errors, errors
        assert not pool.broken
        assert pool.stats["executes"] == 12
        assert pool.stats["plan_misses"] == 2  # one per distinct fingerprint
        assert pool.stats["plan_hits"] == 10
