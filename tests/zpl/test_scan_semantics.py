"""Semantic tests for scan blocks: the paper's Fig. 2 and Fig. 3 examples."""

import numpy as np
import pytest

from repro import zpl
from tests.conftest import record_tomcatv_block, tomcatv_fragment_oracle


class TestFig3:
    """Paper Fig. 3: prime turns an anti-dependence into a true dependence."""

    N = 5

    def _fresh(self):
        return zpl.ones(zpl.Region.square(1, self.N), name="a")

    def test_unprimed_fig3c(self):
        a = self._fresh()
        with zpl.covering(zpl.Region.of((2, self.N), (1, self.N))):
            a[...] = 2.0 * (a @ zpl.NORTH)
        expected = np.ones((self.N, self.N))
        expected[1:, :] = 2.0
        np.testing.assert_array_equal(a.to_numpy(), expected)

    def test_primed_fig3f(self):
        a = self._fresh()
        with zpl.covering(zpl.Region.of((2, self.N), (1, self.N))):
            with zpl.scan():
                a[...] = 2.0 * (a.p @ zpl.NORTH)
        expected = np.array([[2.0 ** min(i, 4)] * self.N for i in range(self.N)])
        np.testing.assert_array_equal(a.to_numpy(), expected)

    def test_primed_southward(self):
        # Mirror image: wavefront travelling south-to-north.
        a = self._fresh()
        with zpl.covering(zpl.Region.of((1, self.N - 1), (1, self.N))):
            with zpl.scan():
                a[...] = 2.0 * (a.p @ zpl.SOUTH)
        expected = np.array(
            [[2.0 ** (self.N - 1 - i)] * self.N for i in range(self.N)]
        )
        np.testing.assert_array_equal(a.to_numpy(), expected)

    def test_primed_eastwest(self):
        a = self._fresh()
        with zpl.covering(zpl.Region.of((1, self.N), (2, self.N))):
            with zpl.scan():
                a[...] = 2.0 * (a.p @ zpl.WEST)
        expected = np.array([[2.0 ** min(j, 4) for j in range(self.N)]] * self.N)
        np.testing.assert_array_equal(a.to_numpy(), expected)


class TestTomcatv:
    """The Fig. 2(b) scan block must match the Fig. 1(a) Fortran 77 loops."""

    @pytest.mark.parametrize("n", [6, 9, 16])
    def test_matches_fortran_oracle(self, n):
        block, (aa, d, dd, rx, ry, r) = record_tomcatv_block(n)
        expected = tomcatv_fragment_oracle(n, aa, d, dd, rx, ry, r)
        from repro.runtime import execute_vectorized

        execute_vectorized(block.compile())
        for got, want in zip((r, d, rx, ry), expected):
            np.testing.assert_allclose(got.to_numpy(), want, rtol=1e-12)

    def test_unprimed_aa_reads_old_values(self):
        # aa is never written in the block: its shifted reference must read
        # the original contents even while the wavefront sweeps over rows.
        n = 8
        block, (aa, *_rest) = record_tomcatv_block(n)
        before = aa.to_numpy()
        from repro.runtime import execute_vectorized

        execute_vectorized(block.compile())
        np.testing.assert_array_equal(aa.to_numpy(), before)


class TestDiagonalWavefront:
    def test_smith_waterman_style_recurrence(self):
        # f[i,j] = max(f[i-1,j], f[i,j-1]) + 1 starting from a zero boundary
        # counts the Manhattan distance — a two-direction wavefront.
        n = 6
        f = zpl.zeros(zpl.Region.square(1, n), name="f")
        with zpl.covering(zpl.Region.square(1, n)):
            with zpl.scan():
                f[...] = zpl.maximum(f.p @ zpl.NORTH, f.p @ zpl.WEST) + 1.0
        expected = np.fromfunction(lambda i, j: i + j + 1, (n, n))
        np.testing.assert_array_equal(f.to_numpy(), expected)

    def test_true_diagonal_dependence(self):
        # f[i,j] = f[i-1,j-1] + 1 along the diagonal only.
        n = 5
        f = zpl.zeros(zpl.Region.square(1, n), name="f")
        with zpl.covering(zpl.Region.square(1, n)):
            with zpl.scan():
                f[...] = (f.p @ zpl.NORTHWEST) + 1.0
        expected = np.fromfunction(lambda i, j: np.minimum(i, j) + 1, (n, n))
        np.testing.assert_array_equal(f.to_numpy(), expected)


class TestMultiStatementVisibility:
    def test_unprimed_ref_to_earlier_statement_same_iteration(self):
        # 'u' is written by statement 0 and read unshifted by statement 1:
        # statement 1 must observe the value statement 0 just produced.
        n = 5
        u = zpl.zeros(zpl.Region.square(1, n), name="u")
        v = zpl.zeros(zpl.Region.square(1, n), name="v")
        with zpl.covering(zpl.Region.of((2, n), (1, n))):
            with zpl.scan():
                u[...] = (u.p @ zpl.NORTH) + 1.0
                v[...] = u * 10.0
        assert float(u[(4, 2)]) == 3.0
        assert float(v[(4, 2)]) == 30.0

    def test_cross_array_wavefront(self):
        # The wavefront flows through TWO arrays: u depends on v's previous
        # row and vice versa.
        n = 6
        u = zpl.full(zpl.Region.square(1, n), 1.0, name="u")
        v = zpl.full(zpl.Region.square(1, n), 2.0, name="v")
        with zpl.covering(zpl.Region.of((2, n), (1, n))):
            with zpl.scan():
                u[...] = (v.p @ zpl.NORTH) + 1.0
                v[...] = (u.p @ zpl.NORTH) * 2.0
        # Row 2: u = v[1] + 1 = 3 ; v = u[1] * 2 = 2.
        assert float(u[(2, 1)]) == 3.0
        assert float(v[(2, 1)]) == 2.0
        # Row 3: u = v[2] + 1 = 3 ; v = u[2] * 2 = 6.
        assert float(u[(3, 1)]) == 3.0
        assert float(v[(3, 1)]) == 6.0
