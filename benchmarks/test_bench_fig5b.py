"""Fig. 5(b) bench: the β-dominated worst-case study."""

from repro.experiments import fig5b_model_worstcase


def test_fig5b_full_study(bench):
    result = bench(fig5b_model_worstcase.run, quick=True)
    assert result.model1_best_b == 20
    assert result.model2_best_b == 3


def test_fig5b_penalty_sweep_only(bench):
    # The processor sweep is the expensive half; time it alone.
    def sweep():
        return fig5b_model_worstcase.run(quick=False).penalty_by_procs

    table = bench(sweep)
    penalties = [row[-1] for row in table.rows]
    assert penalties[-1] > penalties[0]
