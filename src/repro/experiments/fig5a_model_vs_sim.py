"""Fig. 5(a): modelled vs simulated speedup from pipelining Tomcatv's wavefront.

The paper compares Model1 (β = 0) and Model2 (full α+β) against measured
speedup *due to pipelining* on the Cray T3E, as block size varies, for the
Tomcatv wavefront (n = 257, p = 8).  Here the "experimental" curve comes from
the discrete-event machine simulator running the actual Fig. 2(b) scan block;
each model curve divides the same measured non-pipelined baseline by that
model's predicted pipelined time, so a model's error is entirely its own.
The paper's reported facts, which the regenerated series must preserve:

* Model1 picks b = 39, Model2 picks b = 23, and b = 23 is in fact better
  (the simulated curve is higher at 23 than at 39);
* Model2 tracks the observed speedup far more closely than Model1 (which,
  ignoring β, wildly over-predicts).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import suite
from repro.experiments.common import PAPER_N, heading
from repro.machine.params import CRAY_T3E, MachineParams
from repro.machine.schedules import naive_wavefront, pipelined_wavefront
from repro.models.pipeline_model import model1, model2
from repro.util.tables import Series, merge_series

DESCRIPTION = "Fig. 5(a): Model1/Model2 vs simulated speedup, Tomcatv wavefront on the T3E"


@dataclass(frozen=True)
class Fig5aResult:
    n: int
    p: int
    baseline_time: float
    model1_series: Series
    model2_series: Series
    simulated: Series
    model1_best_b: int
    model2_best_b: int
    simulated_best_b: int

    def report(self) -> str:
        table = merge_series(
            f"Fig. 5(a): speedup due to pipelining vs block size "
            f"(Tomcatv wavefront, n={self.n}, p={self.p}, Cray T3E)",
            [self.model1_series, self.model2_series, self.simulated],
        )
        lines = [
            heading("Fig. 5(a) — model vs simulated pipelining speedup"),
            table.render(),
            "",
            f"non-pipelined baseline time: {self.baseline_time:.0f} element-units",
            f"optimal block size: Model1 b={self.model1_best_b} "
            f"(paper: 39), Model2 b={self.model2_best_b} (paper: 23), "
            f"simulated b={self.simulated_best_b}",
            f"simulated speedup at Model2's b: {self.sim_at(self.model2_best_b):.3f}",
            f"simulated speedup at Model1's b: {self.sim_at(self.model1_best_b):.3f}",
            f"Model2 tracks the simulation better: {self.model2_tracks_better()}",
        ]
        return "\n".join(lines)

    def sim_at(self, b: int) -> float:
        """Simulated speedup at (or nearest to) block size b."""
        nearest = min(
            range(len(self.simulated.xs)),
            key=lambda i: abs(self.simulated.xs[i] - b),
        )
        return self.simulated.ys[nearest]

    def model2_tracks_better(self) -> bool:
        """Mean absolute error of Model2 vs Model1 against the simulation."""
        err1 = sum(
            abs(y - s) for y, s in zip(self.model1_series.ys, self.simulated.ys)
        )
        err2 = sum(
            abs(y - s) for y, s in zip(self.model2_series.ys, self.simulated.ys)
        )
        return err2 < err1


def run(
    n: int = PAPER_N,
    p: int = 8,
    params: MachineParams = CRAY_T3E,
    block_sizes: tuple[int, ...] | None = None,
    quick: bool = False,
) -> Fig5aResult:
    """Regenerate the figure; ``quick`` shrinks the problem and the sweep."""
    if quick:
        n = min(n, 65)
        block_sizes = block_sizes or (1, 2, 4, 8, 16, 24, 32)
    entry = suite.get("tomcatv-fragment")
    compiled = entry.build(n)
    rows = compiled.region.extent(0)
    cols = compiled.region.extent(1)
    m = entry.boundary_rows

    if block_sizes is None:
        block_sizes = tuple(
            sorted(set(list(range(1, 12)) + list(range(12, 65, 2)) + [23, 39]))
        )
    block_sizes = tuple(b for b in block_sizes if b <= cols)

    baseline = naive_wavefront(
        compiled, params, n_procs=p, compute_values=False
    ).total_time

    m1 = model1(params, rows, p, boundary_rows=m, cols=cols)
    m2 = model2(params, rows, p, boundary_rows=m, cols=cols)
    s1 = Series("Model1", xlabel="b", ylabel="speedup")
    s2 = Series("Model2", xlabel="b", ylabel="speedup")
    sim = Series("simulated", xlabel="b", ylabel="speedup")
    for b in block_sizes:
        s1.add(b, baseline / m1.predicted_time(b))
        s2.add(b, baseline / m2.predicted_time(b))
        outcome = pipelined_wavefront(
            compiled, params, n_procs=p, block_size=b, compute_values=False
        )
        sim.add(b, baseline / outcome.total_time)

    return Fig5aResult(
        n=n,
        p=p,
        baseline_time=baseline,
        model1_series=s1,
        model2_series=s2,
        simulated=sim,
        model1_best_b=m1.optimal_block_size(),
        model2_best_b=m2.optimal_block_size(),
        simulated_best_b=int(sim.argmax()),
    )
