"""Unit tests for parallel arrays (storage, fluff, borders, access)."""

import numpy as np
import pytest

from repro import zpl
from repro.errors import ArrayError
from repro.zpl.arrays import ZArray


@pytest.fixture
def arr() -> ZArray:
    a = zpl.zeros(zpl.Region.of((1, 4), (1, 5)), name="a")
    a.load(np.arange(20, dtype=float).reshape(4, 5))
    return a


class TestAllocation:
    def test_declared_and_storage_regions(self, arr):
        assert arr.region.ranges == ((1, 4), (1, 5))
        assert arr.storage_region.ranges == ((0, 5), (0, 6))

    def test_fluff_zero(self):
        a = ZArray(zpl.Region.of((1, 3)), fluff=0)
        assert a.storage_region == a.region

    def test_fluff_negative_rejected(self):
        with pytest.raises(ArrayError):
            ZArray(zpl.Region.of((1, 3)), fluff=-1)

    def test_empty_region_rejected(self):
        with pytest.raises(ArrayError):
            ZArray(zpl.Region.of((3, 1)))

    def test_fill_value(self):
        a = zpl.full(zpl.Region.of((1, 2), (1, 2)), 7.5)
        assert float(a[(1, 1)]) == 7.5
        # Border (fluff) cells are filled too.
        assert a.read(a.storage_region)[0, 0] == 7.5

    def test_factories(self):
        r = zpl.Region.of((1, 2), (1, 2))
        assert np.all(zpl.zeros(r).to_numpy() == 0.0)
        assert np.all(zpl.ones(r).to_numpy() == 1.0)

    def test_from_numpy(self):
        values = np.arange(6, dtype=float).reshape(2, 3)
        a = zpl.from_numpy(values, base=1)
        assert a.region.ranges == ((1, 2), (1, 3))
        np.testing.assert_array_equal(a.to_numpy(), values)


class TestAccess:
    def test_global_indexing(self, arr):
        # Element (i, j) uses global indices regardless of storage layout.
        assert float(arr[(1, 1)]) == 0.0
        assert float(arr[(4, 5)]) == 19.0

    def test_put_get(self, arr):
        arr.put((2, 3), 99.0)
        assert arr.get((2, 3)) == 99.0

    def test_fluff_accessible(self, arr):
        arr.put((0, 0), -1.0)
        assert arr.get((0, 0)) == -1.0

    def test_out_of_storage_get(self, arr):
        with pytest.raises(ArrayError):
            arr.get((-1, 0))

    def test_out_of_storage_put(self, arr):
        with pytest.raises(ArrayError):
            arr.put((7, 1), 0.0)

    def test_read_region_is_view(self, arr):
        view = arr.read(zpl.Region.of((1, 1), (1, 5)))
        view[0, 0] = 123.0
        assert arr.get((1, 1)) == 123.0

    def test_read_outside_storage_raises(self, arr):
        with pytest.raises(ArrayError, match="outside the storage"):
            arr.read(zpl.Region.of((-2, 1), (1, 5)))

    def test_write_region(self, arr):
        arr.write(zpl.Region.of((2, 3), (2, 3)), np.full((2, 2), 5.0))
        assert arr.get((2, 2)) == 5.0
        assert arr.get((3, 3)) == 5.0
        assert arr.get((1, 1)) == 0.0

    def test_rank_mismatch(self, arr):
        with pytest.raises(ArrayError):
            arr.read(zpl.Region.of((1, 2)))

    def test_load_shape_check(self, arr):
        with pytest.raises(ArrayError):
            arr.load(np.zeros((3, 3)))


class TestBorders:
    def test_set_border_north(self, arr):
        arr.set_border(zpl.NORTH, 9.0)
        assert arr.get((0, 1)) == 9.0
        assert arr.get((0, 5)) == 9.0
        assert arr.get((1, 1)) == 0.0  # declared values untouched

    def test_set_border_array_values(self, arr):
        arr.set_border(zpl.WEST, np.arange(4, dtype=float).reshape(4, 1))
        assert arr.get((3, 0)) == 2.0

    def test_copy_like(self, arr):
        arr.set_border(zpl.NORTH, 4.0)
        clone = arr.copy_like(name="b")
        assert clone.name == "b"
        assert clone.get((0, 1)) == 4.0  # fluff copied too
        clone.put((1, 1), -5.0)
        assert arr.get((1, 1)) == 0.0  # independent storage


class TestStatementSyntax:
    def test_setitem_region_with_ndarray(self, arr):
        arr[zpl.Region.of((1, 1), (1, 5))] = np.full((1, 5), 2.5)
        assert arr.get((1, 3)) == 2.5

    def test_setitem_scalar_element(self, arr):
        arr[(2, 2)] = 42
        assert arr.get((2, 2)) == 42.0

    def test_getitem_region(self, arr):
        np.testing.assert_array_equal(
            arr[zpl.Region.of((1, 1), (1, 5))], arr.to_numpy()[:1]
        )

    def test_getitem_ellipsis(self, arr):
        np.testing.assert_array_equal(arr[...], arr.to_numpy())

    def test_bad_key(self, arr):
        with pytest.raises(ArrayError):
            arr["oops"]

    def test_eager_statement_with_region_key(self, arr):
        arr[zpl.Region.of((2, 3), (1, 5))] = arr + 1.0
        assert arr.get((2, 1)) == 6.0  # was 5.0
        assert arr.get((1, 1)) == 0.0

    def test_expression_to_element_rejected(self, arr):
        with pytest.raises(ArrayError):
            arr[(1, 1)] = arr + 1.0
