"""Block-level task DAG derivation for ``schedule="taskgraph"``.

The pipelined schedule orders blocks statically: rank order along the
wavefront, chunk order within a rank.  That order is *sufficient* for the
UDVs but far from *necessary* — a block may fire the moment the blocks its
dependences actually reach have completed.  This module derives that exact
partial order at plan time:

* **Tiles** come from :func:`repro.machine.schedules.taskgraph_intervals`:
  the pipelined schedule's own chunk boundaries along the chunk dimension
  crossed with over-decomposed per-rank slabs along the wavefront
  dimension (so stolen work still lands near its home rank's data).
* **Edges** are computed geometrically from the UDVs.  Every
  :class:`~repro.compiler.udv.Dependence` — true, anti *and* output —
  stores ``vector = dest - source`` with the source ordered first, so for
  a dependence ``v`` the predecessors of tile ``T`` are exactly the tiles
  intersecting ``T.shift(-v)``; components along untiled dimensions never
  cross a tile boundary and drop out.  Compile-time legality (the loop
  structure of :mod:`repro.compiler.loopstruct`, derived from the same
  constraint vectors :mod:`repro.compiler.legality` validates) guarantees
  each vector is non-negative along both tiled axes once normalised by the
  traversal sign; :func:`derive_taskgraph` re-checks this and raises
  :class:`~repro.errors.DistributionError` rather than ever building a
  cyclic graph.
* **Dead tiles are pruned.**  When every globally-storing statement is
  masked, none of its masks is written by the block, and all of them are
  zero everywhere on a tile, the tile stores nothing — running it would
  only recompute values that :func:`~repro.runtime.vectorized` masks back
  out — so it never enters the graph.  This is the banded Smith-Waterman
  win: blocks entirely outside the band cost nothing.  Edges through a
  pruned tile need no rewiring: a tile that writes nothing orders nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.compiler.lowering import CompiledScan
from repro.errors import DistributionError
from repro.machine.schedules import WavefrontPlan, taskgraph_intervals
from repro.zpl.regions import Region


@dataclass(frozen=True)
class TaskGraph:
    """The pruned block-level DAG, ready for the stealing scheduler."""

    #: Live tiles in traversal order (wave-major, chunk-minor).
    tiles: tuple[Region, ...]
    #: Home rank of each live tile (the rank whose static slab contains it).
    homes: tuple[int, ...]
    preds: tuple[tuple[int, ...], ...]
    succs: tuple[tuple[int, ...], ...]
    #: Fully-masked tiles that never entered the graph.
    n_pruned: int
    n_edges: int
    #: Tiling shape before pruning (wave tiles x chunk tiles).
    n_wave: int
    n_chunk: int

    @property
    def n_live(self) -> int:
        return len(self.tiles)

    @property
    def roots(self) -> tuple[int, ...]:
        return tuple(t for t, p in enumerate(self.preds) if not p)

    def __repr__(self) -> str:
        return (
            f"TaskGraph({self.n_live} tiles [{self.n_wave}x{self.n_chunk}, "
            f"{self.n_pruned} pruned], {self.n_edges} edges)"
        )


def _projected_vectors(
    compiled: CompiledScan, w: int, c: int | None
) -> list[tuple[int, int]]:
    """Distinct UDV projections onto the tiled axes, normalised-sign-checked.

    All dependence kinds participate: out-of-order firing must respect anti
    and output dependences exactly as it respects flow.
    """
    signs = compiled.loops.signs
    sw = 1 if signs[w] >= 0 else -1
    sc = 1 if c is None or signs[c] >= 0 else -1
    seen: set[tuple[int, int]] = set()
    for dep in compiled.dependences:
        vw = dep.vector[w]
        vc = dep.vector[c] if c is not None else 0
        if vw == 0 and vc == 0:
            continue  # intra-tile along the tiled axes: the engine orders it
        if vw * sw < 0 or vc * sc < 0:
            raise DistributionError(
                f"{dep.kind.value} dependence {dep.vector} on {dep.array!r} "
                f"points against the traversal on a tiled dimension; this "
                f"block admits no forward task graph — use "
                f"schedule=\"pipelined\""
            )
        seen.add((vw, vc))
    return sorted(seen)


def _overlapping(
    intervals: Sequence[tuple[int, int]], lo: int, hi: int
) -> list[int]:
    """Indices of the intervals that intersect ``[lo, hi]`` (tens of tiles:
    a linear scan beats bookkeeping)."""
    return [
        k for k, (ilo, ihi) in enumerate(intervals) if ilo <= hi and ihi >= lo
    ]


def _prunable_masks(compiled: CompiledScan) -> list | None:
    """The mask arrays that decide tile liveness, or ``None`` when pruning
    is unsound for this block.

    Sound iff every statement with a *global* store (contracted targets
    allocate no storage, so a masked-off tile leaves them untouched
    everywhere it matters) carries a mask, and no mask array is itself
    written by the block — plan-time mask values then hold for the whole
    run, and a tile where every mask is zero stores nothing at all.
    """
    masks = []
    written = {id(stmt.target) for stmt in compiled.statements}
    for stmt in compiled.statements:
        if compiled.is_contracted(stmt.target):
            continue
        if stmt.mask is None or id(stmt.mask) in written:
            return None
        masks.append(stmt.mask)
    return masks if masks else None


def tile_dependences(
    compiled: CompiledScan,
    tiles: Sequence[Region],
    region: Region,
) -> list[tuple[int, int, object]]:
    """Geometric block-level dependence edges between arbitrary tiles.

    The projection :func:`derive_taskgraph` applies to its own interval
    tiling, generalised to any tile set (the certifier feeds it the
    pipelined schedule's chunk regions too): for each dependence ``v`` and
    each non-empty destination tile ``T``, the source tiles are exactly the
    non-empty tiles intersecting ``T.shift(-v)`` clipped to ``region``.
    Returns ``(src_index, dst_index, dependence)`` triples, self-edges
    omitted — an engine orders the cells *within* one tile by construction,
    so only cross-tile edges need schedule-level synchronisation.
    """
    nonempty = [(i, tile) for i, tile in enumerate(tiles) if not tile.is_empty()]
    out: list[tuple[int, int, object]] = []
    for dep in compiled.dependences:
        if dep.is_loop_independent():
            continue
        back = tuple(-component for component in dep.vector)
        for dst, tile in nonempty:
            src_region = tile.shift(back).intersect(region)
            if src_region.is_empty():
                continue
            for src, src_tile in nonempty:
                if src == dst:
                    continue
                if not src_tile.intersect(src_region).is_empty():
                    out.append((src, dst, dep))
    return out


def derive_taskgraph(
    compiled: CompiledScan,
    plan: WavefrontPlan,
    locals_by_rank: Sequence[Region],
    oversub: int,
    block_size: int,
    prune: bool = True,
) -> TaskGraph:
    """Tile the plan region and wire the exact dependence DAG between tiles.

    ``locals_by_rank`` are the per-rank static slabs (``BlockMap`` local
    regions, in rank order) that anchor each tile's home; ``oversub`` and
    ``block_size`` set the wave/chunk tile granularity (see
    :func:`repro.parallel.autotune.taskgraph_tiling`).
    """
    region = plan.region
    w, c = plan.wavefront_dim, plan.chunk_dim
    wave, chunk = taskgraph_intervals(plan, locals_by_rank, oversub, block_size)
    if not wave:
        raise DistributionError("empty region: nothing to schedule")
    vectors = _projected_vectors(compiled, w, c)
    n_wave, n_chunk = len(wave), len(chunk)

    def tile_region(wi: int, cj: int) -> Region:
        wlo, whi, _home = wave[wi]
        tile = region.slab(w, wlo, whi)
        if chunk[cj] is not None:
            tile = tile.slab(c, *chunk[cj])
        return tile

    tiles_all = [
        tile_region(wi, cj) for wi in range(n_wave) for cj in range(n_chunk)
    ]

    masks = _prunable_masks(compiled) if prune else None
    if masks is None:
        live = [True] * len(tiles_all)
    else:
        live = [
            any(np.any(mask.read(tile) != 0) for mask in masks)
            for tile in tiles_all
        ]
    n_pruned = live.count(False)
    live_id = {}
    for g, alive in enumerate(live):
        if alive:
            live_id[g] = len(live_id)

    chunk_ranges = [r for r in chunk if r is not None]
    preds: list[set[int]] = [set() for _ in range(len(live_id))]
    succs: list[set[int]] = [set() for _ in range(len(live_id))]
    n_edges = 0
    for wi in range(n_wave):
        wlo, whi, _home = wave[wi]
        for cj in range(n_chunk):
            dst = live_id.get(wi * n_chunk + cj)
            if dst is None:
                continue
            for vw, vc in vectors:
                src_wave = _overlapping(
                    [(lo, hi) for lo, hi, _ in wave], wlo - vw, whi - vw
                )
                if chunk[cj] is None:
                    src_chunk = [cj]
                else:
                    clo, chi = chunk[cj]
                    src_chunk = _overlapping(chunk_ranges, clo - vc, chi - vc)
                for wsrc in src_wave:
                    for csrc in src_chunk:
                        if (wsrc, csrc) == (wi, cj):
                            continue
                        src = live_id.get(wsrc * n_chunk + csrc)
                        if src is None:
                            continue
                        # The sign check above makes every source tile
                        # earlier in traversal order — assert the invariant
                        # the acyclicity proof rests on.
                        assert wsrc <= wi and csrc <= cj
                        if src not in preds[dst]:
                            preds[dst].add(src)
                            succs[src].add(dst)
                            n_edges += 1

    live_tiles = tuple(t for t, alive in zip(tiles_all, live) if alive)
    homes = tuple(
        wave[g // n_chunk][2] for g, alive in enumerate(live) if alive
    )
    return TaskGraph(
        tiles=live_tiles,
        homes=homes,
        preds=tuple(tuple(sorted(p)) for p in preds),
        succs=tuple(tuple(sorted(s)) for s in succs),
        n_pruned=n_pruned,
        n_edges=n_edges,
        n_wave=n_wave,
        n_chunk=n_chunk,
    )
