"""Shared-memory task-graph scheduler: ready deques, stealing, completion.

The runtime half of ``schedule="taskgraph"`` (the plan-time half is
:mod:`repro.compiler.taskdag`).  One small shared segment holds the whole
scheduler state as int64 planes:

* ``pending[t]`` — unfinished predecessors of live tile ``t``; a tile is
  pushed onto a deque exactly when this hits zero.
* per-rank ready **deques** — a slot array plus ``head``/``tail`` cursors.
  The owner pushes and pops at the tail (LIFO: the tile just unblocked is
  the one whose inputs are hottest); a thief steals from the head (FIFO:
  the oldest ready tile, most likely far from the owner's current working
  set anyway).  Slots are never reused — every live tile is enqueued once,
  so ``n_live + 1`` slots per rank bound the worst case (the ``+1`` is the
  sanitizer's injected duplicate).
* ``stamps[t]`` — completion stamps, written under the graph lock *before*
  any successor's ``pending`` is decremented: the happens-before edge the
  sanitizer checks.
* each deque slot carries **evidence**: the pending count of the tile at
  the moment it was enqueued.  A correct scheduler only ever enqueues at
  zero, so a popped slot with nonzero evidence is a protocol violation
  regardless of thread timing — this is what makes the injected
  ``early-fire`` fault (:func:`repro.analyze.sanitizer.parse_inject`)
  deterministically detectable.

Locking: one graph lock (pending decrements, completion count) and one
lock per deque; ``complete()`` holds the graph lock and takes deque locks
one at a time inside it, pops/steals take a single deque lock — a strict
two-level order, so no deadlock.  Termination: ``completed == n_live``,
checked only when a worker finds every deque empty; a failing worker
raises after setting the shared error flag so its peers drain out instead
of spinning to the timeout.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.errors import MachineError, SanitizerError
from repro.parallel.sharedmem import _untracked_attach
from repro.runtime.kernels import plan_kind, resolve_engine
from repro.runtime.vectorized import execute_vectorized
from repro.zpl.regions import Region

#: Idle backoff while every deque is empty but the graph is unfinished.
POLL_SECONDS = 50e-6


@dataclass(frozen=True)
class TaskgraphSpec:
    """Everything a worker needs to join one task-graph run (picklable —
    the synchronisation locks travel separately, by fork/args inheritance)."""

    segment: str
    n_ranks: int
    tiles: tuple[Region, ...]
    homes: tuple[int, ...]
    preds: tuple[tuple[int, ...], ...]
    succs: tuple[tuple[int, ...], ...]
    #: Run the enqueue-evidence + completion-stamp checks on every pop.
    sanitize: bool = False

    @property
    def n_live(self) -> int:
        return len(self.tiles)


@dataclass(frozen=True)
class TaskgraphReport:
    """Scheduler-side outcome of one taskgraph run (on ``ParallelRun``)."""

    #: Live tiles executed (post-pruning).
    n_tasks: int
    #: Fully-masked tiles that never entered the graph.
    n_pruned: int
    n_edges: int
    #: Cross-rank steals, summed over workers.
    steals: int
    #: Tiles each rank actually executed (sums to ``n_tasks``).
    tasks_by_rank: tuple[int, ...]
    #: High-water mark of each rank's ready deque.
    ready_peak: tuple[int, ...]

    def __repr__(self) -> str:
        return (
            f"TaskgraphReport({self.n_tasks} tiles, {self.n_pruned} pruned, "
            f"{self.steals} steals)"
        )


def report_from_stats(graph, run_stats: dict[int, dict]) -> TaskgraphReport:
    """Fold per-rank worker stats into one :class:`TaskgraphReport`."""
    ranks = sorted(run_stats)
    return TaskgraphReport(
        n_tasks=graph.n_live,
        n_pruned=graph.n_pruned,
        n_edges=graph.n_edges,
        steals=int(sum(run_stats[r].get("steals", 0) for r in ranks)),
        tasks_by_rank=tuple(
            int(run_stats[r].get("tasks", 0)) for r in ranks
        ),
        ready_peak=tuple(
            int(run_stats[r].get("ready_peak", 0)) for r in ranks
        ),
    )


class _Views:
    """Numpy views over the scheduler segment (parent- or worker-side)."""

    HEADER = 2  # completed, error

    def __init__(self, buf, n_live: int, n_ranks: int):
        cap = n_live + 1
        plane = np.ndarray((self.HEADER + 2 * n_live + 3 * n_ranks
                            + 2 * n_ranks * cap,), dtype=np.int64, buffer=buf)
        off = self.HEADER
        self.header = plane[:off]
        self.pending = plane[off:off + n_live]; off += n_live
        self.stamps = plane[off:off + n_live]; off += n_live
        self.head = plane[off:off + n_ranks]; off += n_ranks
        self.tail = plane[off:off + n_ranks]; off += n_ranks
        self.peak = plane[off:off + n_ranks]; off += n_ranks
        self.slot_task = plane[off:off + n_ranks * cap].reshape(n_ranks, cap)
        off += n_ranks * cap
        self.slot_ev = plane[off:off + n_ranks * cap].reshape(n_ranks, cap)
        self.cap = cap

    @classmethod
    def nbytes(cls, n_live: int, n_ranks: int) -> int:
        cap = n_live + 1
        return 8 * (cls.HEADER + 2 * n_live + 3 * n_ranks
                    + 2 * n_ranks * cap)

    # Unlocked primitive: callers hold the deque's lock.
    def push(self, rank: int, task: int, evidence: int) -> None:
        slot = int(self.tail[rank])
        self.slot_task[rank, slot] = task
        self.slot_ev[rank, slot] = evidence
        self.tail[rank] = slot + 1
        depth = slot + 1 - int(self.head[rank])
        if depth > self.peak[rank]:
            self.peak[rank] = depth


class TaskgraphState:
    """Parent-side owner of the scheduler segment: create, seed, release."""

    def __init__(self, graph, n_ranks: int,
                 inject: tuple[str, int, int] | None = None):
        n_live = graph.n_live
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(8, _Views.nbytes(n_live, n_ranks))
        )
        views = _Views(self._shm.buf, n_live, n_ranks)
        views.header[:] = 0
        views.stamps[:] = 0
        views.head[:] = 0
        views.tail[:] = 0
        views.peak[:] = 0
        for t, preds in enumerate(graph.preds):
            views.pending[t] = len(preds)
        # Seed the roots before any worker exists: no locks needed.
        for t in graph.roots:
            views.push(graph.homes[t], t, 0)
        if inject is not None:
            kind, rank, task = inject
            if kind == "early-fire":
                if not 0 <= task < n_live:
                    raise SanitizerError(
                        f"early-fire injection names tile {task}, but the "
                        f"graph has {n_live} live tiles"
                    )
                # The injected protocol violation: enqueue a tile whose
                # predecessors have not completed, carrying its honest
                # (nonzero) pending count as evidence.
                views.push(rank % n_ranks, task, int(views.pending[task]))
        self._views = views
        self.spec_segment = self._shm.name

    def spec(self, graph, n_ranks: int, sanitize: bool) -> TaskgraphSpec:
        return TaskgraphSpec(
            segment=self.spec_segment,
            n_ranks=n_ranks,
            tiles=graph.tiles,
            homes=graph.homes,
            preds=graph.preds,
            succs=graph.succs,
            sanitize=sanitize,
        )

    def release(self) -> None:
        self._views = None
        try:
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:
            pass


def make_locks(ctx, n_ranks: int):
    """The run's lock set: ``(graph_lock, (deque_lock, ...))``.  Built by
    whoever forks the workers — locks only travel by inheritance."""
    return (ctx.Lock(), tuple(ctx.Lock() for _ in range(n_ranks)))


def taskgraph_loop(
    runnable,
    spec: TaskgraphSpec,
    locks,
    rank: int,
    timeout: float,
    tracer,
    stats: dict | None = None,
    tags: dict | None = None,
) -> float:
    """One worker's run of the shared DAG: pop local, steal, fire, complete.

    Mirrors :func:`repro.parallel.worker.pipeline_loop`'s contract: returns
    busy-loop seconds, records the :mod:`repro.obs` span/counter schema when
    ``tracer`` is enabled (spans tagged ``schedule="taskgraph"``), and fills
    ``stats`` with the pool's incremental flush — plus the scheduler's own
    ``steals``/``tasks``/``ready_peak`` numbers.
    """
    graph_lock, deque_locks = locks
    tracing = tracer.enabled
    # Loop-invariant engine resolution: skip the per-tile environment reads.
    engine = resolve_engine(None)
    extra = tags or {}
    kind = plan_kind(runnable) if tracing else None
    n_live = spec.n_live
    with _untracked_attach():
        shm = shared_memory.SharedMemory(name=spec.segment)
    try:
        views = _Views(shm.buf, n_live, spec.n_ranks)
        victims = [r for r in range(spec.n_ranks) if r != rank]
        victims = victims[rank:] + victims[:rank]  # stagger steal targets

        def pop(victim: int, from_head: bool):
            with deque_locks[victim]:
                head, tail = int(views.head[victim]), int(views.tail[victim])
                if head >= tail:
                    return None
                slot = head if from_head else tail - 1
                if from_head:
                    views.head[victim] = head + 1
                else:
                    views.tail[victim] = tail - 1
                return int(views.slot_task[victim, slot]), int(
                    views.slot_ev[victim, slot]
                )

        busy_s = wait_s = 0.0
        steals = tasks = elements = 0
        idle_poll = POLL_SECONDS
        start = time.perf_counter()
        deadline = start + timeout
        try:
            while True:
                if views.header[1]:
                    break  # a peer failed; drain out, it reports the error
                item = pop(rank, from_head=False)
                stolen = False
                if item is None:
                    for victim in victims:
                        item = pop(victim, from_head=True)
                        if item is not None:
                            stolen = True
                            break
                if item is None:
                    # Unlocked read: header[0] is a single aligned word that
                    # only ever reaches n_live once everything completed.
                    if int(views.header[0]) >= n_live:
                        break
                    if time.perf_counter() > deadline:
                        raise MachineError(
                            f"taskgraph worker {rank} idle past "
                            f"{timeout:.0f}s with "
                            f"{n_live - int(views.header[0])} tiles unfinished"
                        )
                    # Exponential backoff while empty-handed: on an
                    # oversubscribed host, idle pollers hammering the deque
                    # locks steal time slices from the workers doing the
                    # computing.
                    time.sleep(idle_poll)
                    wait_s += idle_poll
                    idle_poll = min(idle_poll * 2, 2e-3)
                    continue
                idle_poll = POLL_SECONDS
                task, evidence = item
                if stolen:
                    steals += 1
                    if tracing:
                        tracer.count("pool_steals")
                if spec.sanitize:
                    if evidence != 0:
                        raise SanitizerError(
                            f"tile {task} fired with {evidence} predecessor(s) "
                            f"unfinished at enqueue time (popped by rank "
                            f"{rank}): the ready protocol released it early"
                        )
                    late = [p for p in spec.preds[task]
                            if int(views.stamps[p]) == 0]
                    if late:
                        raise SanitizerError(
                            f"tile {task} fired before predecessor tile(s) "
                            f"{late} stamped completion (popped by rank "
                            f"{rank})"
                        )
                tile = spec.tiles[task]
                t0 = time.perf_counter()
                if not tile.is_empty():
                    execute_vectorized(
                        runnable, within=tile, engine=engine,
                        tracer=tracer if tracing else None,
                    )
                t1 = time.perf_counter()
                busy_s += t1 - t0
                tasks += 1
                elements += tile.size
                if tracing:
                    tracer.add_span(
                        "compute", "compute", t0, t1,
                        block=task, elements=tile.size, plan=kind,
                        schedule="taskgraph", stolen=stolen, **extra,
                    )
                    tracer.count("blocks_executed")
                    tracer.count("elements_computed", tile.size)
                with graph_lock:
                    views.stamps[task] = 1
                    views.header[0] += 1
                    ready = []
                    for succ in spec.succs[task]:
                        views.pending[succ] -= 1
                        if views.pending[succ] == 0:
                            ready.append(succ)
                    for succ in ready:
                        home = spec.homes[succ]
                        with deque_locks[home]:
                            views.push(home, succ, 0)
        except BaseException:
            views.header[1] = 1  # release the peers before reporting
            raise
        elapsed = time.perf_counter() - start
        if stats is not None:
            stats["elapsed"] = elapsed
            stats["busy"] = busy_s
            stats["wait"] = wait_s
            stats["blocks"] = tasks
            stats["elements"] = elements
            stats["tokens"] = 0
            stats["steals"] = steals
            stats["tasks"] = tasks
            stats["ready_peak"] = int(views.peak[rank])
        return elapsed
    finally:
        views = None
        try:
            shm.close()
        except BufferError:
            pass


def resolve_oversub(default: int = 3) -> int:
    """The wave-dimension over-decomposition factor (sub-slabs per rank).

    ``REPRO_TASKGRAPH_OVERSUB`` overrides; the default of 3 gives the
    stealing scheduler rebalancing slack at ~3x the tile bookkeeping.
    """
    raw = os.environ.get("REPRO_TASKGRAPH_OVERSUB", "")
    try:
        return max(1, int(raw)) if raw else default
    except ValueError:
        raise MachineError(
            f"REPRO_TASKGRAPH_OVERSUB={raw!r} is not an integer"
        ) from None
