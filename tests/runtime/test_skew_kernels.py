"""Tests for the skewed plan family: selection, counters, escape hatches."""

import numpy as np
import pytest

from repro import zpl
from repro.apps.alignment import (
    build_score_block,
    needleman_wunsch,
    nw_score_oracle,
    smith_waterman_score,
)
from repro.compiler import compile_scan
from repro.obs.trace import Tracer
from repro.runtime import (
    KERNEL_STATS,
    default_engine,
    execute_loopnest,
    execute_vectorized,
    plan_kind,
    resolve_engine,
    run_and_capture,
    skew_enabled,
)
from repro.runtime import kernels as kernels_mod
from repro.runtime.kernels import template_for
from repro.zpl.arrays import ZArray


def dp_block(n=7, seed=0):
    """A 2-dependence wavefront block (both dims looped) plus its arrays."""
    rng = np.random.default_rng(seed)
    a = zpl.from_numpy(rng.uniform(0.5, 1.5, size=(n, n)), base=1, name="a")
    with zpl.covering(zpl.Region.of((2, n), (2, n))):
        with zpl.scan(execute=False) as block:
            a[...] = (
                (a.p @ zpl.NORTH) * 0.4
                + (a.p @ zpl.WEST) * 0.3
                + (a.p @ zpl.NORTHWEST) * 0.2
            )
    return compile_scan(block), [a]


def all_engines(compiled, arrays):
    """Storage after skewed / flat / interp runs from identical state."""
    return {
        engine: run_and_capture(
            lambda c, e=engine: execute_vectorized(c, engine=e),
            compiled,
            arrays,
        )
        for engine in ("kernel", "flat", "interp")
    }


class TestSkewSelection:
    def test_dp_block_selects_skewed(self):
        compiled, _ = dp_block()
        assert plan_kind(compiled) == "skewed"
        assert plan_kind(compiled, engine="flat") == "flat"
        assert plan_kind(compiled, engine="interp") == "interp"

    def test_single_looped_dim_stays_flat(self):
        n = 8
        a = zpl.ones(zpl.Region.square(1, n), name="a")
        with zpl.covering(zpl.Region.of((2, n), (1, n))):
            with zpl.scan(execute=False) as block:
                a[...] = (a.p @ zpl.NORTH) * 0.5
        compiled = compile_scan(block)
        assert template_for(compiled).skew is None
        assert plan_kind(compiled) == "flat"

    def test_skewed_counters(self):
        compiled, arrays = dp_block()
        KERNEL_STATS.reset()
        execute_vectorized(compiled, engine="kernel")
        snap = KERNEL_STATS.snapshot()
        assert snap["skew_plan_builds"] == 1
        assert snap["hyperplanes"] > 0
        execute_vectorized(compiled, engine="kernel")
        snap = KERNEL_STATS.snapshot()
        assert snap["skew_plan_hits"] == 1

    def test_tracer_counters(self):
        compiled, _ = dp_block()
        tracer = Tracer(proc=0)
        execute_vectorized(compiled, engine="kernel", tracer=tracer)
        execute_vectorized(compiled, engine="kernel", tracer=tracer)
        counters = {name: v for (_, name), v in tracer.counters.items()}
        assert counters["hyperplanes"] > 0
        assert counters["skew_plan_hits"] == 1

    def test_skewed_and_flat_plans_coexist(self):
        compiled, _ = dp_block()
        execute_vectorized(compiled, engine="kernel")
        execute_vectorized(compiled, engine="flat")
        assert len(template_for(compiled).plans) == 2


class TestSkewEquivalence:
    def test_dp_block_bit_identical(self):
        compiled, arrays = dp_block()
        results = all_engines(compiled, arrays)
        for engine in ("flat", "interp"):
            for s, o in zip(results["kernel"], results[engine]):
                np.testing.assert_array_equal(s, o, err_msg=f"vs {engine}")

    def test_matches_loopnest_oracle(self):
        compiled, arrays = dp_block()
        oracle = run_and_capture(execute_loopnest, compiled, arrays)
        skewed = run_and_capture(
            lambda c: execute_vectorized(c, engine="kernel"), compiled, arrays
        )
        for s, o in zip(skewed, oracle):
            np.testing.assert_allclose(s, o, rtol=1e-12, atol=1e-12)

    def test_alignment_matches_python_oracle(self):
        a, b = "GATTACAGGT", "GCATGCUTAC"
        result = needleman_wunsch(a, b, engine="kernel")
        assert result.score == nw_score_oracle(a, b)

    def test_alignment_engines_agree(self):
        a, b = "ACGTACGTAC", "TACGATCGAT"
        scores = {
            engine: smith_waterman_score(a, b, engine=engine)
            for engine in ("kernel", "flat", "interp")
        }
        assert scores["kernel"] == scores["flat"] == scores["interp"]

    def test_within_restriction(self):
        compiled, arrays = dp_block(n=9)
        sub = compiled.region.slab(1, 3, 6)
        skewed = run_and_capture(
            lambda c: execute_vectorized(c, within=sub, engine="kernel"),
            compiled, arrays,
        )
        interp = run_and_capture(
            lambda c: execute_vectorized(c, within=sub, engine="interp"),
            compiled, arrays,
        )
        for s, i in zip(skewed, interp):
            np.testing.assert_array_equal(s, i)


class TestEscapeHatches:
    def test_repro_skew_downgrades_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        assert default_engine() == "kernel"
        monkeypatch.setenv("REPRO_SKEW", "0")
        assert not skew_enabled()
        assert default_engine() == "flat"
        # The kill switch also beats explicit engine="kernel".
        assert resolve_engine("kernel") == "flat"

    def test_repro_skew_off_runs_flat(self, monkeypatch):
        monkeypatch.setenv("REPRO_SKEW", "0")
        compiled, arrays = dp_block()
        assert plan_kind(compiled) == "flat"
        KERNEL_STATS.reset()
        execute_vectorized(compiled)
        assert KERNEL_STATS.snapshot()["skew_plan_builds"] == 0

    def test_flat_engine_never_skews(self):
        compiled, _ = dp_block()
        KERNEL_STATS.reset()
        execute_vectorized(compiled, engine="flat")
        snap = KERNEL_STATS.snapshot()
        assert snap["skew_plan_builds"] == 0
        assert snap["plan_builds"] == 1


class TestEngineResolver:
    def test_repro_engine_values(self, monkeypatch):
        for value, expected in (
            ("kernel", "kernel"),
            ("flat", "flat"),
            ("interp", "interp"),
            ("0", "interp"),
            ("off", "interp"),
        ):
            monkeypatch.setenv("REPRO_ENGINE", value)
            assert default_engine() == expected, value

    def test_repro_engine_beats_legacy(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "flat")
        monkeypatch.setenv("REPRO_KERNELS", "0")
        assert default_engine() == "flat"

    def test_legacy_alias_warns_once(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        monkeypatch.setenv("REPRO_KERNELS", "0")
        monkeypatch.setattr(kernels_mod, "_legacy_env_warned", False)
        with pytest.warns(DeprecationWarning, match="REPRO_KERNELS"):
            assert default_engine() == "interp"
        # second resolution stays silent
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            assert default_engine() == "interp"
