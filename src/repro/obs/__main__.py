"""The observability CLI: ``python -m repro.obs summarize|export|residuals|top``.

Every analysis subcommand either loads a saved trace (``Trace.save``
JSON, the artifact the benchmarks drop next to ``BENCH_*.json``) or
captures a fresh one by running a suite kernel:

* ``summarize [TRACE]`` — pipeline fill/steady/drain phase report,
  per-worker utilisation, critical-path wait, counter totals;
* ``export [TRACE] -o OUT`` — Chrome trace-event JSON; open in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``;
* ``residuals [TRACE]`` — per-block measured-vs-Eq.(1) table; with no
  trace argument it runs **both** the simulator and the real backend on
  the same kernel so the two tables are directly comparable;
* ``top [--url URL]`` — live dashboard of a running :mod:`repro.serve`
  instance (throughput, latency quantiles, queue depth, per-worker
  utilisation, model drift), polling its JSON ``/metrics``.

A missing, empty, or truncated trace file fails with a one-line
``error: ...`` on stderr and exit code 1 — never a traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.export import write_chrome
from repro.obs.phases import (
    analyze_phases,
    format_phase_report,
    format_residuals,
    format_serve_report,
    is_serve_trace,
)
from repro.obs.trace import Trace


class CLIError(Exception):
    """A user-facing failure: rendered as one line, exit code 1."""


def _load_trace(path: str) -> Trace:
    """Load a saved trace, mapping every broken-file mode to a CLIError."""
    p = Path(path)
    if not p.exists():
        raise CLIError(f"trace file not found: {p}")
    if p.is_dir():
        raise CLIError(f"{p} is a directory, not a trace file")
    try:
        text = p.read_text()
    except OSError as exc:
        raise CLIError(f"cannot read trace file {p}: {exc}") from exc
    if not text.strip():
        raise CLIError(f"trace file is empty: {p}")
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise CLIError(
            f"trace file {p} is not valid JSON (truncated or corrupt): {exc}"
        ) from exc
    try:
        return Trace.from_dict(payload)
    except (ValueError, KeyError, TypeError) as exc:
        raise CLIError(f"{p} is not a repro trace: {exc}") from exc


def _capture(backend: str, args: argparse.Namespace) -> Trace:
    from repro.obs import capture

    if backend == "simulator":
        _, trace = capture.capture_simulator(
            kernel=args.kernel,
            n=args.n,
            procs=args.procs or 4,
            block=args.block,
            schedule=args.schedule,
        )
    else:
        from repro.parallel.executor import default_grid

        procs = args.procs or default_grid().size
        _, trace = capture.capture_parallel(
            kernel=args.kernel,
            n=args.n,
            procs=procs,
            block=args.block,
            schedule=args.schedule,
        )
    return trace


def _traces(args: argparse.Namespace) -> list[tuple[str, Trace]]:
    if args.trace:
        return [(args.trace, _load_trace(args.trace))]
    backends = (
        ("simulator", "parallel") if args.backend == "both" else (args.backend,)
    )
    return [(backend, _capture(backend, args)) for backend in backends]


def _add_source_args(p: argparse.ArgumentParser, backend_default: str) -> None:
    p.add_argument(
        "trace",
        nargs="?",
        default=None,
        help="saved trace JSON; omit to capture a fresh run",
    )
    p.add_argument(
        "--backend",
        choices=("simulator", "parallel", "both"),
        default=backend_default,
        help="which backend to capture when no trace file is given",
    )
    p.add_argument("--kernel", default="single-stream", help="suite kernel name")
    p.add_argument("--n", type=int, default=48, help="problem size")
    p.add_argument("--procs", type=int, default=None, help="processor count")
    p.add_argument("--block", type=int, default=None, help="pipeline block size")
    p.add_argument(
        "--schedule", choices=("pipelined", "naive"), default="pipelined"
    )


def _counter_lines(trace: Trace) -> list[str]:
    names = sorted({name for (_, name) in trace.counters})
    return [
        f"  counter {name:<18} total {trace.counter_total(name):g}"
        for name in names
    ]


def _run(args: argparse.Namespace) -> int:
    if args.command == "summarize":
        for label, trace in _traces(args):
            if is_serve_trace(trace):
                # Serve traces have no worker pipeline to phase-split;
                # render the per-request latency breakdown instead.
                print(format_serve_report(trace, title=f"== {label} =="))
            else:
                try:
                    report = analyze_phases(trace)
                except ValueError as exc:
                    raise CLIError(str(exc)) from exc
                print(format_phase_report(report, title=f"== {label} =="))
            for line in _counter_lines(trace):
                print(line)
        return 0

    if args.command == "export":
        traces = _traces(args)
        for label, trace in traces:
            if args.out:
                out = Path(args.out)
                if len(traces) > 1:  # one file per backend, not one overwrite
                    out = out.with_name(f"{out.stem}.{label}{out.suffix}")
            elif args.trace:
                out = Path(args.trace).with_suffix(".chrome.json")
            else:
                out = Path(f"TRACE_{label}.chrome.json")
            path = write_chrome(trace, out)
            print(f"wrote {path} ({len(trace.spans)} spans; open in Perfetto)")
        return 0

    if args.command == "residuals":
        for label, trace in _traces(args):
            try:
                print(format_residuals(trace, title=f"== {label} =="))
            except ValueError as exc:
                raise CLIError(str(exc)) from exc
        return 0

    if args.command == "top":
        from repro.obs.live.top import run_top

        iterations = 1 if args.once else args.iterations
        return run_top(
            args.url, interval=args.interval, iterations=iterations,
            clear=not args.once,
        )

    return 2


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="phase report for a traced run")
    _add_source_args(p_sum, backend_default="simulator")

    p_exp = sub.add_parser("export", help="write Chrome trace-event JSON")
    _add_source_args(p_exp, backend_default="simulator")
    p_exp.add_argument("-o", "--out", default=None, help="output path")

    p_res = sub.add_parser("residuals", help="measured vs Eq. (1), per block")
    _add_source_args(p_res, backend_default="both")

    p_top = sub.add_parser(
        "top", help="live dashboard of a running repro.serve instance"
    )
    p_top.add_argument(
        "--url", default="http://127.0.0.1:8077",
        help="server base URL (its /metrics is polled)",
    )
    p_top.add_argument(
        "--interval", type=float, default=1.0, help="refresh period, seconds"
    )
    p_top.add_argument(
        "--once", action="store_true", help="render one frame and exit"
    )
    p_top.add_argument(
        "--iterations", type=int, default=None,
        help="stop after N frames (default: run until interrupted)",
    )

    args = parser.parse_args(argv)
    try:
        return _run(args)
    except CLIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
