"""Tests for the utility layer: validation, tables, timing."""

import time

import numpy as np
import pytest

from repro.util.tables import Series, Table, format_bar_chart, merge_series
from repro.util.timing import WallTimer
from repro.util.validation import (
    check_int,
    check_nonnegative,
    check_positive,
    check_positive_int,
    check_tuple_of_int,
)


class TestValidation:
    def test_check_int_accepts_numpy(self):
        assert check_int(np.int64(7), "x") == 7
        assert isinstance(check_int(np.int32(3), "x"), int)

    def test_check_int_rejects_bool_and_float(self):
        with pytest.raises(TypeError):
            check_int(True, "x")
        with pytest.raises(TypeError):
            check_int(1.5, "x")

    def test_check_positive_int(self):
        assert check_positive_int(1, "x") == 1
        with pytest.raises(ValueError):
            check_positive_int(0, "x")

    def test_check_nonnegative(self):
        assert check_nonnegative(0, "x") == 0.0
        with pytest.raises(ValueError):
            check_nonnegative(-0.1, "x")
        with pytest.raises(ValueError):
            check_nonnegative(float("nan"), "x")
        with pytest.raises(TypeError):
            check_nonnegative("z", "x")

    def test_check_positive(self):
        assert check_positive(2.5, "x") == 2.5
        with pytest.raises(ValueError):
            check_positive(0.0, "x")

    def test_check_tuple_of_int(self):
        assert check_tuple_of_int([1, 2], "x") == (1, 2)
        assert check_tuple_of_int(np.array([3, 4]), "x") == (3, 4)
        with pytest.raises(TypeError):
            check_tuple_of_int("12", "x")
        with pytest.raises(TypeError):
            check_tuple_of_int([1.5], "x")


class TestTable:
    def test_render_alignment(self):
        t = Table("Title", ["a", "bb"], precision=2)
        t.add_row(1, 2.345)
        t.add_row(10, 0.5)
        text = t.render()
        assert "Title" in text
        assert "2.35" in text  # rounded to precision
        lines = text.splitlines()
        assert len({len(line) for line in lines[2:]}) <= 2  # columns aligned

    def test_row_width_check(self):
        t = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)


class TestSeries:
    def test_argmax_and_max(self):
        s = Series("s", "x", "y")
        for x, y in [(1, 0.5), (2, 2.0), (3, 1.0)]:
            s.add(x, y)
        assert s.argmax() == 2
        assert s.max() == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Series("s", "x", "y").argmax()

    def test_as_table(self):
        s = Series("speedup", "b", "S")
        s.add(4, 1.25)
        assert "1.250" in s.as_table().render()

    def test_merge_requires_common_axis(self):
        a = Series("a", "x", "y")
        b = Series("b", "x", "y")
        a.add(1, 1.0)
        b.add(2, 2.0)
        with pytest.raises(ValueError):
            merge_series("t", [a, b])

    def test_merge(self):
        a = Series("a", "x", "y")
        b = Series("b", "x", "y")
        for x in (1, 2):
            a.add(x, float(x))
            b.add(x, 2.0 * x)
        text = merge_series("m", [a, b]).render()
        assert "a" in text and "b" in text

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_series("t", [])


class TestBarChart:
    def test_scaling(self):
        text = format_bar_chart("bars", [("one", 1.0), ("two", 2.0)], width=10)
        lines = text.splitlines()
        assert lines[2].count("#") == 5
        assert lines[3].count("#") == 10

    def test_zero_values(self):
        text = format_bar_chart("z", [("a", 0.0)])
        assert "0.00" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_bar_chart("t", [])


class TestWallTimer:
    def test_accumulates(self):
        t = WallTimer()
        with t:
            time.sleep(0.01)
        first = t.elapsed
        with t:
            time.sleep(0.01)
        assert t.elapsed > first

    def test_reset(self):
        t = WallTimer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0

    def test_exit_without_enter(self):
        t = WallTimer()
        with pytest.raises(RuntimeError):
            t.__exit__(None, None, None)

    def test_reset_inside_open_interval_raises(self):
        # Regression: reset() used to silently zero elapsed while an
        # interval was in flight, corrupting the in-progress measurement.
        t = WallTimer()
        with t:
            pass
        with pytest.raises(RuntimeError, match="interval in progress"):
            with t:
                t.reset()

    def test_reset_after_exit_still_works(self):
        t = WallTimer()
        with t:
            time.sleep(0.001)
        assert t.elapsed > 0.0
        t.reset()
        assert t.elapsed == 0.0
        with t:  # timer remains usable after the reset
            pass
        assert t.elapsed >= 0.0
