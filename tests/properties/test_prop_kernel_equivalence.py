"""Property: the AOT kernel engine is bit-identical to the tree-walkers.

Extends the crown-jewel equivalence property to the kernel layer: random
legal scan blocks — rank-1 and rank-2, optionally masked, optionally with a
contracted temporary, always carrying at least one primed read — must
produce *bit-identical* storage under ``engine="kernel"`` and
``engine="interp"``, and agree with the scalar loop-nest oracle to float
tolerance.  Contracted arrays' storage is excluded from the oracle
comparison (the oracle materialises them; the slab engines never touch
their storage), but the kernel-vs-interp comparison stays exhaustive.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import zpl
from repro.compiler import compile_scan, contract, contractible
from repro.runtime import execute_loopnest, execute_vectorized, run_and_capture

#: Primed directions per rank (non-positive components: always a legal WSV).
NEG_POOLS = {
    1: ((-1,), (-2,)),
    2: ((-1, 0), (0, -1), (-1, -1), (-2, 0), (0, -2), (-1, -2)),
}
#: Read-only reference offsets per rank.
ANY_POOLS = {
    1: ((-1,), (1,), (0,), (2,)),
    2: ((-1, 0), (1, 0), (0, -1), (0, 1), (1, 1), (-1, 1), (0, 0)),
}


@st.composite
def kernel_programs(draw):
    """A random legal scan block, its arrays, and the feature it exercises."""
    rank = draw(st.sampled_from((1, 2)))
    n = draw(st.integers(6, 10))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    base = zpl.Region.of(*(((1, n),) * rank))
    region = zpl.Region.of(*(((3, n - 1),) * rank))
    feature = draw(st.sampled_from(("plain", "mask", "contract", "index")))

    n_targets = draw(st.integers(1, 3))
    targets = []
    for k in range(n_targets):
        arr = zpl.ZArray(base, name=f"t{k}", fluff=2)
        arr._data[...] = rng.uniform(0.5, 1.5, size=arr._data.shape)
        targets.append(arr)
    readonly = zpl.ZArray(base, name="ro", fluff=2)
    readonly._data[...] = rng.uniform(0.5, 1.5, size=readonly._data.shape)
    arrays = targets + [readonly]

    temp = None
    if feature == "contract":
        temp = zpl.ZArray(base, name="tmp", fluff=2)
        temp._data[...] = rng.uniform(0.5, 1.5, size=temp._data.shape)
        arrays.append(temp)
    mask = None
    if feature == "mask":
        mask = zpl.ZArray(base, name="m", fluff=2)
        mask._data[...] = 0.0
        mask.load((rng.uniform(size=base.shape) < 0.6).astype(float))
        arrays.append(mask)

    def one_expr(k, force_prime):
        n_terms = draw(st.integers(1, 3))
        expr = zpl.as_node(draw(st.floats(0.05, 0.5)))
        for term in range(n_terms):
            if force_prime and term == 0:
                kind = "primed"
            else:
                kind = draw(
                    st.sampled_from(("primed", "readonly", "self", "temp"))
                )
            coeff = draw(st.floats(0.1, 0.45))
            if kind == "primed":
                other = targets[draw(st.integers(0, n_targets - 1))]
                direction = draw(st.sampled_from(NEG_POOLS[rank]))
                expr = expr + coeff * (other.p @ direction)
            elif kind == "readonly":
                direction = draw(st.sampled_from(ANY_POOLS[rank]))
                expr = expr + coeff * (readonly @ direction)
            elif kind == "temp" and temp is not None:
                expr = expr + coeff * temp.ref
            else:
                expr = expr + coeff * targets[k].ref
        if feature == "index":
            dim = draw(st.integers(0, rank - 1))
            expr = expr + 0.01 * zpl.index(dim)
        return expr

    contexts = [zpl.covering(region)]
    if mask is not None:
        contexts.append(zpl.masked(mask))
    with contexts[0]:
        if mask is not None:
            contexts[1].__enter__()
        try:
            with zpl.scan(execute=False) as block:
                if temp is not None:
                    # The promoted scalar: written every iteration (with the
                    # block's wavefront prime), read back at zero shift.
                    temp[...] = one_expr(0, force_prime=True)
                for k in range(n_targets):
                    targets[k][...] = one_expr(k, force_prime=(k == 0))
        finally:
            if mask is not None:
                contexts[1].__exit__(None, None, None)

    compiled = compile_scan(block)
    if temp is not None and contractible(compiled, temp):
        compiled = contract(compiled, [temp])
    return compiled, arrays


@given(kernel_programs())
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_kernel_engine_matches_interp_and_oracle(program):
    compiled, arrays = program

    oracle = run_and_capture(execute_loopnest, compiled, arrays)
    interp = run_and_capture(
        lambda c: execute_vectorized(c, engine="interp"), compiled, arrays
    )
    kernel = run_and_capture(
        lambda c: execute_vectorized(c, engine="kernel"), compiled, arrays
    )

    contracted_ids = {id(a) for a in compiled.contracted}
    for array, o, i, k in zip(arrays, oracle, interp, kernel):
        # kernel and interp share slab semantics: must be bit-identical,
        # contracted storage included (neither engine touches it).
        np.testing.assert_array_equal(
            k, i, err_msg=f"array {array.name}: kernel != interp"
        )
        if id(array) not in contracted_ids:
            np.testing.assert_allclose(
                i, o, rtol=1e-12, atol=1e-12,
                err_msg=f"array {array.name}: slab engines != oracle",
            )
