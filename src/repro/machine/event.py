"""A small discrete-event simulation core (generator-based processes).

This is the engine under the simulated distributed machine: processes are
Python generators that ``yield`` events — timeouts (modelling compute or
communication overhead) or store gets (modelling blocking receives) — and the
simulator advances a virtual clock deterministically.  The design is a
minimal, dependency-free take on the classic process-interaction style
(cf. SimPy), sized for this library's needs:

* :class:`Simulator` — the event queue and clock;
* :class:`Timeout` — fires after a virtual delay;
* :class:`Store` — an unbounded FIFO of items with blocking ``get``;
* :func:`Simulator.process` — spawn a generator as a process.

Determinism: events scheduled at equal times fire in schedule order (a
monotone sequence number breaks ties), so simulations are exactly
reproducible — a property the experiment harness relies on.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterator

from repro.errors import DeadlockError, MachineError

ProcessBody = Generator["Event", Any, None]


class Event:
    """Base event: processes yield these; the simulator resumes them later."""

    __slots__ = ("callbacks", "triggered", "value")

    def __init__(self) -> None:
        self.callbacks: list[Callable[["Event"], None]] = []
        self.triggered = False
        self.value: Any = None

    def _succeed(self, sim: "Simulator", value: Any = None) -> None:
        if self.triggered:
            raise MachineError("event triggered twice")
        self.triggered = True
        self.value = value
        for callback in self.callbacks:
            sim._post(callback, self)
        self.callbacks.clear()


class Timeout(Event):
    """An event that fires ``delay`` time units after being yielded."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        super().__init__()
        if delay < 0:
            raise MachineError(f"negative timeout {delay}")
        self.delay = float(delay)


class Get(Event):
    """A pending retrieval from a :class:`Store` (completes FIFO)."""

    __slots__ = ()


class Store:
    """Unbounded FIFO store: ``put`` never blocks, ``get`` blocks when empty.

    Used as a process mailbox: the sender puts a message, the receiver yields
    ``store.get()`` and is resumed with the item as the yield's value.
    """

    def __init__(self, sim: "Simulator"):
        self._sim = sim
        self._items: deque[Any] = deque()
        self._waiters: deque[Get] = deque()

    def put(self, item: Any) -> None:
        """Deposit an item, waking the oldest waiter if any."""
        if self._waiters:
            self._waiters.popleft()._succeed(self._sim, item)
        else:
            self._items.append(item)

    def get(self) -> Get:
        """An event that completes with the next item (FIFO)."""
        event = Get()
        if self._items:
            event._succeed(self._sim, self._items.popleft())
        else:
            self._waiters.append(event)
        return event

    def __len__(self) -> int:
        return len(self._items)


class Process(Event):
    """A running generator; completes when the generator returns."""

    __slots__ = ("_body", "name")

    def __init__(self, body: ProcessBody, name: str = "proc"):
        super().__init__()
        self._body = body
        self.name = name

    def _step(self, sim: "Simulator", resume_value: Any) -> None:
        try:
            event = self._body.send(resume_value)
        except StopIteration:
            self._succeed(sim)
            return
        if not isinstance(event, Event):
            raise MachineError(
                f"process {self.name!r} yielded {event!r}; processes must "
                f"yield Timeout/Get/Process events"
            )
        if isinstance(event, Timeout):
            sim._schedule(event.delay, lambda: event._succeed(sim))
        if event.triggered:
            sim._post(lambda ev: self._step(sim, ev.value), event)
        else:
            event.callbacks.append(lambda ev: self._step(sim, ev.value))


class Simulator:
    """The virtual clock and event queue."""

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._processes: list[Process] = []

    # -- internals ---------------------------------------------------------
    def _schedule(self, delay: float, action: Callable[[], None]) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, action))

    def _post(self, callback: Callable[[Event], None], event: Event) -> None:
        self._schedule(0.0, lambda: callback(event))

    # -- public API ----------------------------------------------------------
    def timeout(self, delay: float) -> Timeout:
        """An event firing ``delay`` virtual time units from now."""
        return Timeout(delay)

    def store(self) -> Store:
        """A fresh FIFO store (mailbox)."""
        return Store(self)

    def process(self, body: ProcessBody, name: str = "proc") -> Process:
        """Spawn ``body`` as a process starting at the current time."""
        proc = Process(body, name=name)
        self._processes.append(proc)
        self._schedule(0.0, lambda: proc._step(self, None))
        return proc

    def run(self, until: float | None = None) -> float:
        """Drain the event queue; return the final clock value.

        Raises :class:`DeadlockError` when processes remain unfinished but no
        events are pending (e.g. a receive that can never be satisfied).
        """
        while self._queue:
            time, _, action = heapq.heappop(self._queue)
            if until is not None and time > until:
                self.now = until
                return self.now
            if time < self.now:
                raise MachineError("event queue went backwards in time")
            self.now = time
            action()
        stuck = [p.name for p in self._processes if not p.triggered]
        if stuck:
            raise DeadlockError(
                f"simulation deadlocked at t={self.now}: processes "
                f"{stuck} are blocked with no pending events"
            )
        return self.now

    def finished(self) -> Iterator[Process]:
        """All completed processes."""
        return (p for p in self._processes if p.triggered)
