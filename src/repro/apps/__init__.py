"""Benchmark applications: the paper's workloads plus the promised suite.

* :mod:`repro.apps.tomcatv` — SPECfp92 Tomcatv mesh generation (Figs. 1/2/5-7);
* :mod:`repro.apps.simple` — SIMPLE 2-D Lagrangian hydrodynamics (Figs. 6/7);
* :mod:`repro.apps.sweep3d` — ASCI SWEEP3D-style discrete-ordinates sweep;
* :mod:`repro.apps.jacobi` — the non-wavefront stencil example;
* :mod:`repro.apps.gauss_seidel` — Gauss-Seidel/SOR, the solver whose natural
  ordering is a wavefront (inexpressible in an array language without the
  prime operator);
* :mod:`repro.apps.alignment` — dynamic-programming wavefronts;
* :mod:`repro.apps.suite` — the named wavefront-kernel registry.
"""

from repro.apps import tomcatv, simple, sweep3d, jacobi, gauss_seidel, alignment, suite

__all__ = ["tomcatv", "simple", "sweep3d", "jacobi", "gauss_seidel", "alignment", "suite"]
