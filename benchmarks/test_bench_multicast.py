"""Multicast + double-buffered fabric vs plain pipelined pipes at p=4.

A wide rank-2 wavefront (``N x 16``, dependences ``(0,1)`` and ``(1,1)``)
pipelines along the long dimension with fan-out 2 per producer, so the
planner auto-selects the epoch fabric: one shared-memory stamp releases the
whole consumer row, and the boundary halo rides the two-slot double buffer
instead of pipe tokens.  This bench regenerates the acceptance numbers on a
persistent :class:`WorkerPool` with four workers (override the mesh length
with ``REPRO_BENCH_MULTICAST_N`` — CI's smoke step runs a small n):

* both fabrics must leave the arrays **bit-identical** to the sequential
  vectorised engine (equality gate);
* the tile DAG's fan-out must make the planner pick ``fabric="multicast"``
  on its own (no forcing knobs);
* multicast + double buffering must be at least **1.25x** faster than the
  plain pipelined pipes fabric at p=4 — the acceptance gate.  The gate
  needs real cores: on an oversubscribed host every "overlap" is
  time-sliced onto one CPU (see :func:`repro.parallel.oversubscription`),
  so there the bench gates a no-regression bound instead and stamps the
  host facts into the artifact for downstream filtering;
* the fitted collective constants (α_c, β, γ from
  :func:`repro.parallel.autotune.measure_multicast`) are recorded in the
  artifact next to the measured walls, so Model-2 predictions can be
  checked against this exact run.

The payload is written to ``BENCH_multicast.json`` via
:mod:`repro.util.benchjson` and uploaded by CI next to the other
``BENCH_*.json`` artifacts.
"""

import os

import numpy as np

from repro import zpl
from repro.compiler import compile_scan
from repro.machine.schedules import plan_wavefront
from repro.parallel import WorkerPool, oversubscription
from repro.parallel.autotune import measure_multicast
from repro.runtime import execute_vectorized
from repro.runtime.interp import ArraySnapshot
from repro.util.benchjson import read_bench, write_bench
from repro.util.timing import WallTimer

#: Acceptance-criterion length of the chunked (wide) dimension.
N = int(os.environ.get("REPRO_BENCH_MULTICAST_N", "2048"))
#: Wavefront width: 4 ranks x 4 columns each.
WIDTH = 16
BLOCK = max(16, N // 32)
PROCS = 4
REPEATS = 3
#: The CI gate: multicast+double-buffer vs plain pipelined pipes.
MIN_SPEEDUP = 1.25
#: Oversubscribed hosts time-slice both fabrics onto the same cores, which
#: erases the overlap the gate measures; there the bench only refuses a
#: real regression.
MIN_SPEEDUP_TIMESLICED = 0.7


def _wavefront_block(n, width):
    base = zpl.Region.of((1, n), (1, width))
    a = zpl.ZArray(base, name="a", fluff=2)
    rng = np.random.default_rng(7)
    a._data[...] = rng.uniform(0.5, 1.5, size=a._data.shape)
    region = zpl.Region.of((3, n), (3, width))
    # Reader offsets (0,-1) and (-1,-1) -> dependences (0,1) and (1,1):
    # the wavefront runs along the width, blocks chunk the long dimension,
    # and the (1,1) diagonal gives every producer two consumer tiles per
    # stamp — the fan-out that flips the planner to the epoch fabric.
    with zpl.covering(region):
        with zpl.scan(execute=False) as block:
            a[...] = 0.3 + 0.4 * (a.p @ (0, -1)) + 0.2 * (a.p @ (-1, -1))
    return compile_scan(block), a


def _timed(pool, compiled, snap, repeats, **kwargs):
    best_wall = float("inf")
    last_run = None
    for _ in range(repeats):
        snap.restore()
        timer = WallTimer()
        with timer:
            last_run = pool.execute(compiled, **kwargs)
        best_wall = min(best_wall, timer.elapsed)
    return best_wall, last_run


def test_multicast_fabric_artifact():
    compiled, a = _wavefront_block(N, WIDTH)
    plan = plan_wavefront(compiled)
    compiled.prepare()
    snap = ArraySnapshot([a])

    # The sequential oracle for the equality gate.
    execute_vectorized(compiled)
    oracle = a.to_numpy().copy()
    snap.restore()

    pool = WorkerPool(PROCS)
    try:
        pipes_wall, pipes_run = _timed(
            pool, compiled, snap, REPEATS,
            schedule="pipelined", block=BLOCK, multicast=False,
        )
        np.testing.assert_array_equal(a.to_numpy(), oracle)
        assert pipes_run.fabric == "pipes"

        mcast_wall, mcast_run = _timed(
            pool, compiled, snap, REPEATS,
            schedule="pipelined", block=BLOCK, double_buffer=True,
        )
        np.testing.assert_array_equal(a.to_numpy(), oracle)
    finally:
        pool.close()

    # The planner must have chosen the fabric from the DAG's fan-out alone.
    assert mcast_run.fabric == "multicast", (
        f"expected automatic multicast selection on the fan-out-2 "
        f"wavefront, got fabric={mcast_run.fabric!r}"
    )

    # The fitted collective constants the artifact promises: α_c + β·s + γ·f
    # measured on this host, this run.
    coll = measure_multicast(sizes=(1, 64, 512), fanouts=(1, 2), cycles=60)

    host = oversubscription(PROCS)
    speedup = pipes_wall / mcast_wall
    results = [
        {
            "test": "multicast_vs_pipelined",
            "n": N,
            "width": WIDTH,
            "block_size": BLOCK,
            "p": PROCS,
            "pipelined_seconds": pipes_wall,
            "multicast_seconds": mcast_wall,
            "multicast_speedup": speedup,
            "fabric": mcast_run.fabric,
            "n_chunks": mcast_run.n_chunks,
            "alpha_c_seconds": coll.alpha_seconds,
            "beta_seconds": coll.beta_seconds,
            "gamma_seconds": coll.gamma_seconds,
            "fit_samples": [list(s) for s in coll.samples],
        }
    ]
    meta = {
        "benchmark": "wide-rank2-wavefront",
        "n": N,
        "width": WIDTH,
        "repeats": REPEATS,
        "host": host,
        "wave_dim": plan.wavefront_dim,
        "chunk_dim": plan.chunk_dim,
    }
    path = write_bench("multicast", results, meta=meta)

    written = read_bench("multicast")
    assert path.name == "BENCH_multicast.json"
    assert written["results"][0]["multicast_seconds"] > 0
    assert written["results"][0]["alpha_c_seconds"] > 0

    # Acceptance criterion — the CI gate.
    gate = MIN_SPEEDUP_TIMESLICED if host["oversubscribed"] else MIN_SPEEDUP
    assert speedup >= gate, (
        f"multicast+double-buffer must be >={gate}x the plain pipelined "
        f"fabric at p={PROCS}, n={N}x{WIDTH} "
        f"(host oversubscribed={host['oversubscribed']}): multicast "
        f"{mcast_wall:.4f}s vs pipes {pipes_wall:.4f}s ({speedup:.2f}x)"
    )
