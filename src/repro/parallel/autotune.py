"""Autotuning: measure the host's real α and β, feed the paper's Eq. (1).

The analytic machinery (:mod:`repro.models.pipeline_model`) works in
*element-compute units*: α and β are expressed as multiples of the time to
compute one element of the data space.  On a real host all three quantities
are measurable:

* **α** — one-way latency of a synchronisation token between two processes,
  measured by pipe ping-pong at several payload sizes and read off as the
  intercept of the fitted line;
* **β** — per-element transfer cost, the slope of the same line (on a
  shared-memory host this is small but not zero: tokens still cross the
  kernel and array traffic crosses the cache hierarchy);
* **compute cost** — seconds per element of the actual compiled block under
  :func:`~repro.runtime.vectorized.execute_vectorized`.

Dividing the measured α and β by the measured per-element compute time gives
a :class:`~repro.machine.params.MachineParams` directly comparable with the
``CRAY_T3E``-style presets — the same object drives the simulator, Model1/
Model2, and Equation (1)'s optimal block size for the real backend.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass
from multiprocessing.connection import Connection

from repro.compiler.lowering import CompiledScan
from repro.errors import MachineError
from repro.machine.params import MachineParams
from repro.machine.schedules import WavefrontPlan, _chunk_regions, plan_wavefront
from repro.models.pipeline_model import model2
from repro.models.tuning import Probe, TuningResult, select_dynamic
from repro.parallel.sharedmem import collect_arrays
from repro.runtime.interp import ArraySnapshot
from repro.runtime.kernels import plan_fingerprint, plan_kind
from repro.runtime.vectorized import execute_vectorized

#: Bytes per element everywhere in this library (float64 storage).
ELEMENT_BYTES = 8


@dataclass(frozen=True)
class CommParams:
    """Measured communication constants of the host, in seconds."""

    #: One-way per-message latency (the real α), seconds.
    alpha_seconds: float
    #: One-way per-element cost (the real β), seconds per float64.
    beta_seconds: float
    #: The (size, one-way seconds) samples the fit was made from.
    samples: tuple[tuple[int, float], ...]

    def message_seconds(self, size: int) -> float:
        """The fitted linear model at ``size`` elements."""
        return self.alpha_seconds + self.beta_seconds * size


def _echo_child(conn: Connection) -> None:
    """Ping-pong peer: echo every payload until the empty sentinel."""
    while True:
        payload = conn.recv_bytes()
        if not payload:
            return
        conn.send_bytes(payload)


def measure_comm(
    sizes: tuple[int, ...] = (1, 64, 512, 4096),
    repeats: int = 30,
    start_method: str | None = None,
) -> CommParams:
    """Measure α and β by pipe ping-pong against a real child process.

    For each payload size the minimum round trip over ``repeats`` trials is
    halved into a one-way latency; a least-squares line over the samples
    yields α (intercept) and β (slope per element).
    """
    if len(sizes) < 2:
        raise MachineError("need at least two payload sizes to fit alpha and beta")
    if start_method is None:
        start_method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    ctx = mp.get_context(start_method)
    here, there = ctx.Pipe(duplex=True)
    child = ctx.Process(target=_echo_child, args=(there,), name="repro-pingpong")
    child.start()
    samples: list[tuple[int, float]] = []
    try:
        there.close()
        for size in sizes:
            payload = bytes(size * ELEMENT_BYTES)
            # Warm the pipe (page faults, allocator) before timing.
            here.send_bytes(payload)
            here.recv_bytes()
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                here.send_bytes(payload)
                here.recv_bytes()
                best = min(best, time.perf_counter() - start)
            samples.append((size, best / 2.0))
        here.send_bytes(b"")
    finally:
        child.join(timeout=10.0)
        if child.is_alive():
            child.terminate()
            child.join(timeout=5.0)
        here.close()

    n = len(samples)
    mean_x = sum(s for s, _ in samples) / n
    mean_y = sum(t for _, t in samples) / n
    var = sum((s - mean_x) ** 2 for s, _ in samples)
    cov = sum((s - mean_x) * (t - mean_y) for s, t in samples)
    beta = max(0.0, cov / var)
    alpha = max(0.0, mean_y - beta * mean_x)
    if alpha == 0.0:
        # Degenerate fit (huge-payload noise): fall back to the smallest
        # sample, which is almost pure startup cost.
        alpha = min(t for _, t in samples)
    return CommParams(alpha, beta, tuple(samples))


def measure_compute_cost(
    compiled: CompiledScan, repeats: int = 3, engine: str | None = None
) -> float:
    """Seconds per element of the compiled block on one processor.

    Runs the real vectorised engine over the full region ``repeats`` times
    (restoring the arrays between runs so every run does identical work) and
    takes the fastest.  ``engine`` picks the sequential engine
    (``"kernel"``/``"interp"``, default-resolved like
    :func:`~repro.runtime.vectorized.execute_vectorized`).
    """
    if repeats < 1:
        raise MachineError(f"repeats must be >= 1, got {repeats}")
    arrays = collect_arrays(compiled)
    snap = ArraySnapshot(arrays)
    compiled.prepare()
    best = float("inf")
    try:
        for _ in range(repeats):
            snap.restore()
            start = time.perf_counter()
            execute_vectorized(compiled, engine=engine)
            best = min(best, time.perf_counter() - start)
    finally:
        snap.restore()
    return best / max(1, compiled.region.size)


def measure_block_overhead(
    compiled: CompiledScan,
    block: int = 8,
    repeats: int = 3,
    engine: str | None = None,
) -> float:
    """Seconds of extra per-block dispatch cost of the vectorised engine.

    On the real machine a pipeline block costs more than its elements: every
    ``execute_vectorized(within=block)`` call pays Python dispatch per slab,
    which behaves exactly like an additional per-message startup cost.  The
    measurement is differential — run the whole region once monolithically
    and once split into blocks of ``block`` columns, and attribute the gap to
    the extra block boundaries.  The result is folded into the *effective* α
    that Equation (1) sees (pure pipe latency alone would suggest far smaller
    blocks than the host actually rewards).

    ``engine`` selects the sequential engine being measured; the default
    (AOT kernels) pays per block only a plan-cache lookup per region, so its
    dispatch cost is orders of magnitude below the tree-walking
    ``engine="interp"`` number this library used to report.
    """
    plan = plan_wavefront(compiled)
    if plan.chunk_dim is None:
        return 0.0
    region = compiled.region
    reverse = compiled.loops.signs[plan.chunk_dim] < 0
    chunks = _chunk_regions(region, plan.chunk_dim, block, reverse)
    if len(chunks) < 2:
        return 0.0
    arrays = collect_arrays(compiled)
    snap = ArraySnapshot(arrays)
    compiled.prepare()
    try:
        whole = float("inf")
        blocked = float("inf")
        for _ in range(repeats):
            snap.restore()
            start = time.perf_counter()
            execute_vectorized(compiled, engine=engine)
            whole = min(whole, time.perf_counter() - start)
            snap.restore()
            start = time.perf_counter()
            for chunk in chunks:
                execute_vectorized(compiled, within=chunk, engine=engine)
            blocked = min(blocked, time.perf_counter() - start)
    finally:
        snap.restore()
    return max(0.0, (blocked - whole) / (len(chunks) - 1))


def measure_pool_dispatch(
    compiled: CompiledScan,
    pool=None,
    block: int = 8,
    repeats: int = 3,
) -> float:
    """Per-pipeline-block dispatch cost through the *persistent pool*, seconds.

    The pooled counterpart of :func:`measure_block_overhead`: run the block
    through :class:`repro.parallel.pool.WorkerPool` once with a single
    whole-width chunk and once split into ``block``-column chunks, and
    attribute the wall-clock gap to the extra block boundaries.  The
    differential cancels the per-run costs the pool already amortises
    (refresh, job send, barrier, gather), leaving the true marginal cost of
    one more pipeline block: one token crossing plus one warm kernel-engine
    dispatch.  This is the ``dispatch_seconds_per_block`` a pooled schedule
    actually pays, and what Equation (1) should see when the pool is used.

    ``pool`` defaults to a throwaway single-worker pool (closed before
    returning); pass an existing pool to measure its grid instead.
    """
    plan = plan_wavefront(compiled)
    if plan.chunk_dim is None:
        return 0.0
    region = compiled.region
    cols = region.extent(plan.chunk_dim)
    reverse = compiled.loops.signs[plan.chunk_dim] < 0
    n_blocked = len(_chunk_regions(region, plan.chunk_dim, block, reverse))
    if n_blocked < 2:
        return 0.0
    from repro.parallel.pool import WorkerPool

    own_pool = pool is None
    if own_pool:
        pool = WorkerPool(1)
    snap = ArraySnapshot(collect_arrays(compiled))
    try:
        # Warm the pool: ship the blob, build the worker's kernel plans.
        pool.execute(compiled, block=cols)
        snap.restore()
        whole = float("inf")
        blocked = float("inf")
        for _ in range(repeats):
            run = pool.execute(compiled, block=cols)
            whole = min(whole, run.wall_time)
            snap.restore()
            run = pool.execute(compiled, block=block)
            blocked = min(blocked, run.wall_time)
            snap.restore()
        # Each worker's chunk count grew by (n_blocked - 1) / n_procs on
        # average; charge the gap to the blocks the critical path added.
        extra = max(1, (n_blocked - 1) // max(1, pool.grid.dims[0]))
        return max(0.0, (blocked - whole) / extra)
    finally:
        snap.restore()
        if own_pool:
            pool.close()


@dataclass(frozen=True)
class AutotuneResult:
    """The host, measured and normalised, plus the Eq. (1) block size."""

    comm: CommParams
    #: Seconds per element of the tuned block (the normalisation unit).
    compute_seconds: float
    #: Per-pipeline-block dispatch overhead of the engine, seconds.
    dispatch_seconds: float
    #: α and β in element-compute units: the simulator-ready machine.
    params: MachineParams
    #: Like ``params`` but with the dispatch overhead folded into α — the
    #: machine Equation (1) should see on this host.
    effective_params: MachineParams
    block_size: int
    n_procs: int
    #: The plan family the measured engine executed (``skewed``/``flat``/
    #: ``interp``).  Skewed plans have a very different per-element cost and
    #: per-block dispatch cost than flat point loops, so Eq. (1) must not mix
    #: measurements across kinds.
    plan_kind: str = "flat"

    def __repr__(self) -> str:
        return (
            f"AutotuneResult(alpha={self.params.alpha:.1f}, "
            f"beta={self.params.beta:.3f}, b*={self.block_size}, "
            f"p={self.n_procs}, plan={self.plan_kind})"
        )


def normalized_params(
    comm: CommParams, compute_seconds: float, name: str = "measured host"
) -> MachineParams:
    """Express measured seconds as element-compute units (simulator-ready)."""
    if compute_seconds <= 0:
        raise MachineError(f"compute cost must be positive, got {compute_seconds}")
    return MachineParams(
        name=name,
        alpha=comm.alpha_seconds / compute_seconds,
        beta=comm.beta_seconds / compute_seconds,
    )


def _geometry(plan: WavefrontPlan) -> tuple[int, int, int]:
    region = plan.region
    rows = region.extent(plan.wavefront_dim)
    cols = region.extent(plan.chunk_dim) if plan.chunk_dim is not None else 1
    return rows, cols, max(1, plan.boundary_rows)


def optimal_block_size(
    plan: WavefrontPlan, params: MachineParams, n_procs: int
) -> int:
    """Equation (1) (exact integer search) for a planned block on ``params``."""
    rows, cols, m = _geometry(plan)
    if n_procs < 2 or cols <= 1:
        return max(1, cols)  # no pipe to fill: one whole-width block
    return model2(
        params, rows, n_procs, boundary_rows=m, cols=cols
    ).optimal_block_size(b_max=cols)


def autotune(
    compiled: CompiledScan,
    n_procs: int,
    *,
    comm: CommParams | None = None,
    compute_seconds: float | None = None,
    dispatch_seconds: float | None = None,
    start_method: str | None = None,
) -> AutotuneResult:
    """Measure the host and derive the optimal pipeline block size.

    Pass ``comm``/``compute_seconds``/``dispatch_seconds`` to reuse earlier
    measurements (the benchmarks measure once and tune for every processor
    count) — but only measurements taken under the same plan kind: the
    result records :func:`repro.runtime.kernels.plan_kind` so callers can
    tell which engine family the constants describe.
    """
    plan = plan_wavefront(compiled)
    kind = plan_kind(compiled)
    if comm is None:
        comm = measure_comm(start_method=start_method)
    if compute_seconds is None:
        compute_seconds = measure_compute_cost(compiled)
    if dispatch_seconds is None:
        dispatch_seconds = measure_block_overhead(compiled)
    params = normalized_params(comm, compute_seconds)
    effective = effective_params(comm, compute_seconds, dispatch_seconds, n_procs)
    block = optimal_block_size(plan, effective, n_procs)
    return AutotuneResult(
        comm, compute_seconds, dispatch_seconds, params, effective, block,
        n_procs, kind,
    )


def effective_params(
    comm: CommParams,
    compute_seconds: float,
    dispatch_seconds: float,
    n_procs: int,
    name: str = "measured host (effective)",
) -> MachineParams:
    """The machine Equation (1) should see: α plus per-block dispatch cost.

    The dispatch overhead was measured over whole-column blocks; with the
    wavefront dimension split ``n_procs`` ways each pipeline stage pays only
    its local share, hence the division.
    """
    if compute_seconds <= 0:
        raise MachineError(f"compute cost must be positive, got {compute_seconds}")
    local_dispatch = dispatch_seconds / max(1, n_procs)
    return MachineParams(
        name=name,
        alpha=(comm.alpha_seconds + local_dispatch) / compute_seconds,
        beta=comm.beta_seconds / compute_seconds,
    )


@dataclass(frozen=True)
class CollectiveParams:
    """Measured collective-release constants of the host, in seconds.

    The multicast fabric's cost model: releasing one pipeline block to
    ``fanout`` consumers costs ``α_c + β·s + γ·fanout`` seconds, where
    ``s`` is the staged boundary size in elements.  α_c is the fixed epoch
    publish (one stamp, independent of fan-out), β the per-element staging
    cost, and γ the marginal per-consumer cost (parked-flag checks and
    semaphore posts).  Dividing by the fan-out gives the *per-edge* α the
    paper's Eq. (1) sees — the amortisation the multicast fabric buys.
    """

    #: Fixed per-release cost (the collective α_c), seconds.
    alpha_seconds: float
    #: Per-element staging cost, seconds per float64.
    beta_seconds: float
    #: Marginal per-consumer cost, seconds per unit of fan-out.
    gamma_seconds: float
    #: The ``(size, fanout, seconds)`` samples the fit was made from.
    samples: tuple[tuple[int, int, float], ...]

    def release_seconds(self, size: int, fanout: int) -> float:
        """The fitted model: one release of ``size`` elements to ``fanout``."""
        return (
            self.alpha_seconds
            + self.beta_seconds * size
            + self.gamma_seconds * fanout
        )

    def per_edge_seconds(self, size: int, fanout: int) -> float:
        """The amortised per-consumer cost (Eq. (1)'s α on this fabric)."""
        return self.release_seconds(size, fanout) / max(1, fanout)


def _collective_child(
    spec, sems, rank: int, bpool_name: str, slot_elems: int,
    sizes: tuple[int, ...], cycles: int,
) -> None:
    """Consumer peer of :func:`measure_multicast`: wait, read, credit."""
    import numpy as np

    from repro.parallel.collectives import MulticastChannel, attach_segment
    from repro.parallel.sharedmem import BoundaryPool

    channel = MulticastChannel(spec, sems, rank)
    seg = attach_segment(bpool_name)
    slots = np.ndarray(
        (spec.n_ranks, BoundaryPool.N_SLOTS, slot_elems),
        dtype=np.float64,
        buffer=seg.buf,
    )
    buf = np.empty(max(sizes), dtype=np.float64)
    k = 0
    try:
        for size in sizes:
            for _ in range(cycles):
                channel.wait_for(0, k, 60.0)
                buf[:size] = slots[0][k % BoundaryPool.N_SLOTS][:size]
                channel.credit(0, k)
                k += 1
    finally:
        channel.detach()
        try:
            seg.close()
        except BufferError:
            pass


def measure_multicast(
    sizes: tuple[int, ...] = (1, 64, 512, 4096),
    fanouts: tuple[int, ...] = (1, 2, 4),
    cycles: int = 200,
    start_method: str | None = None,
) -> CollectiveParams:
    """Measure the collective cost model against real consumer processes.

    For each fan-out ``f`` a one-producer fabric with ``f`` consumers runs
    the steady-state double-buffered cycle — credit wait, stage ``s``
    elements, epoch publish — ``cycles`` times per boundary size; the
    per-cycle seconds over the ``(s, f)`` grid are least-squares fitted to
    ``α_c + β·s + γ·f``.  The producer side is timed (it carries the
    critical path in a pipeline), with consumers running flat out so the
    measurement captures real park/wake traffic.
    """
    import numpy as np

    from repro.parallel.collectives import (
        MulticastChannel,
        MulticastGroups,
        MulticastFabric,
        MulticastSpec,
    )
    from repro.parallel.sharedmem import BoundaryPool

    if len(sizes) < 2 or not fanouts:
        raise MachineError(
            "need at least two sizes and one fanout to fit the collective model"
        )
    if start_method is None:
        start_method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    ctx = mp.get_context(start_method)
    slot_elems = max(sizes)
    samples: list[tuple[int, int, float]] = []
    for f in fanouts:
        n_ranks = f + 1
        groups = MulticastGroups(
            producers=((),) + ((0,),) * f,
            consumers=(tuple(range(1, n_ranks)),) + ((),) * f,
            fanout=(f,) + (0,) * f,
        )
        fabric = MulticastFabric(ctx, n_ranks)
        bpool = BoundaryPool(n_ranks, slot_elems)
        spec = MulticastSpec(
            epoch_seg=fabric.name,
            n_ranks=n_ranks,
            groups=groups,
            wave_dim=0,
            wave_ascending=True,
            rows_by_rank=(None,) * n_ranks,
        )
        procs = [
            ctx.Process(
                target=_collective_child,
                args=(spec, fabric.sems, r, bpool.name, slot_elems,
                      tuple(sizes), cycles),
                name=f"repro-mcast-probe-{r}",
            )
            for r in range(1, n_ranks)
        ]
        channel = MulticastChannel(spec, fabric.sems, 0)
        try:
            for proc in procs:
                proc.start()
            slots = bpool.slots()
            k = 0
            for size in sizes:
                payload = np.full(size, 0.5, dtype=np.float64)
                # Credit waits are backpressure, not release cost: in a real
                # pipeline they overlap consumer compute.  wait_credit reports
                # the seconds it blocked, so the sample is stage+publish only.
                start = time.perf_counter()
                waited = 0.0
                for _ in range(cycles):
                    waited += channel.wait_credit(k, 60.0)
                    slots[0][k % BoundaryPool.N_SLOTS][:size] = payload
                    channel.publish(k)
                    k += 1
                elapsed = time.perf_counter() - start - waited
                samples.append((size, f, max(0.0, elapsed) / cycles))
            for proc in procs:
                proc.join(timeout=30.0)
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5.0)
            channel.detach()
            fabric.release()
            bpool.release()

    design = np.array([[1.0, s, f] for s, f, _ in samples])
    y = np.array([t for _, _, t in samples])
    coeffs, *_ = np.linalg.lstsq(design, y, rcond=None)
    alpha = max(0.0, float(coeffs[0]))
    beta = max(0.0, float(coeffs[1]))
    gamma = max(0.0, float(coeffs[2]))
    if alpha == 0.0:
        # Degenerate fit: the smallest single-consumer sample is almost
        # pure publish cost.
        alpha = min(t for _, _, t in samples)
    return CollectiveParams(alpha, beta, gamma, tuple(samples))


def collective_effective_params(
    coll: CollectiveParams,
    compute_seconds: float,
    dispatch_seconds: float,
    n_procs: int,
    fanout: int = 1,
    name: str = "measured host (multicast)",
) -> MachineParams:
    """The machine Eq. (1) sees on the multicast fabric.

    One release costs ``α_c + γ·f`` regardless of block width; amortised
    over the ``f`` consumer tiles it unblocks, the per-edge α drops by the
    fan-out — that is the speedup Model 2 must predict.  Per-block engine
    dispatch folds in exactly as on the pipe fabric.
    """
    if compute_seconds <= 0:
        raise MachineError(f"compute cost must be positive, got {compute_seconds}")
    f = max(1, fanout)
    local_dispatch = dispatch_seconds / max(1, n_procs)
    per_edge = (coll.alpha_seconds + coll.gamma_seconds * f) / f
    return MachineParams(
        name=name,
        alpha=(per_edge + local_dispatch) / compute_seconds,
        beta=coll.beta_seconds / compute_seconds,
    )


#: Per-process cache of the host's comm constants (measuring costs a child
#: process; the constants do not change between calls).
_HOST_COMM: CommParams | None = None


def host_comm(start_method: str | None = None) -> CommParams:
    """The host's measured :class:`CommParams`, measured once per process."""
    global _HOST_COMM
    if _HOST_COMM is None:
        _HOST_COMM = measure_comm(start_method=start_method)
    return _HOST_COMM


#: Per-process cache of the collective constants (same rationale).
_HOST_COLL: CollectiveParams | None = None


def host_collective(start_method: str | None = None) -> CollectiveParams:
    """The host's measured :class:`CollectiveParams`, measured once."""
    global _HOST_COLL
    if _HOST_COLL is None:
        _HOST_COLL = measure_multicast(start_method=start_method)
    return _HOST_COLL


#: (plan fingerprint, plan kind) -> (compute s/elt, dispatch s/block).
#: Skewed and flat plans of the same block have wildly different constants
#: (one fused kernel per hyperplane vs one dispatch per point), so the memo
#: is keyed per kind: flipping ``REPRO_SKEW``/``REPRO_ENGINE`` re-measures
#: instead of reusing the other family's α.
_BLOCK_COSTS: dict[tuple[str, str], tuple[float, float]] = {}


def tuned_block_size(
    compiled: CompiledScan,
    n_procs: int,
    plan: WavefrontPlan | None = None,
    *,
    fabric: str = "pipes",
    fanout: int = 1,
) -> int:
    """The executor's default block size: cached host α/β into Eq. (1).

    Compute and dispatch costs are memoised per (plan fingerprint, plan
    kind), so structurally equal blocks tune once per engine family.
    ``fabric="multicast"`` swaps the pipe constants for the collective
    model (:func:`host_collective`) amortised over ``fanout`` — a cheaper
    α rewards narrower blocks, so the fabrics tune to different widths.
    """
    if plan is None:
        plan = plan_wavefront(compiled)
    key = (plan_fingerprint(compiled), plan_kind(compiled))
    costs = _BLOCK_COSTS.get(key)
    if costs is None:
        costs = (
            measure_compute_cost(compiled, repeats=1),
            measure_block_overhead(compiled, repeats=1),
        )
        _BLOCK_COSTS[key] = costs
    compute, dispatch = costs
    if fabric == "multicast":
        params = collective_effective_params(
            host_collective(), compute, dispatch, n_procs, fanout
        )
    else:
        params = effective_params(host_comm(), compute, dispatch, n_procs)
    return optimal_block_size(plan, params, n_procs)


def measured_probe(
    compiled: CompiledScan,
    n_procs: int,
    schedule: str = "pipelined",
    start_method: str | None = None,
) -> Probe:
    """A :mod:`repro.models.tuning` probe that runs the *real* backend.

    Restores array state after every run, so a selector may probe freely.
    """
    from repro.parallel.executor import execute

    snap = ArraySnapshot(collect_arrays(compiled))

    def probe(b: int) -> float:
        try:
            run = execute(
                compiled,
                grid=n_procs,
                schedule=schedule,
                block=b,
                start_method=start_method,
            )
            return run.wall_time
        finally:
            snap.restore()

    return probe


def dynamic_block_size(
    compiled: CompiledScan,
    n_procs: int,
    b_max: int | None = None,
    start_method: str | None = None,
) -> TuningResult:
    """The paper's future-work selector, on real hardware: ternary search
    over measured wall-clock times (reuses ``models.tuning.select_dynamic``,
    swapping its simulated probe for the multiprocess backend)."""
    probe = measured_probe(compiled, n_procs, start_method=start_method)
    params = normalized_params(host_comm(), measure_compute_cost(compiled, repeats=1))
    return select_dynamic(compiled, params, n_procs, probe=probe, b_max=b_max)


def taskgraph_tiling(
    compiled: CompiledScan,
    n_procs: int,
    plan: WavefrontPlan | None = None,
) -> tuple[int, int]:
    """``(oversub, block)`` granularity for ``schedule="taskgraph"``.

    The chunk-dimension tile width reuses :func:`tuned_block_size` — the
    per-tile compute vs per-tile scheduling overhead trades off exactly
    like Equation (1)'s compute vs message cost, and sharing the boundary
    keeps taskgraph and pipelined runs block-for-block comparable.  The
    wave dimension is over-decomposed ``oversub`` slabs per worker
    (``REPRO_TASKGRAPH_OVERSUB``; see
    :func:`repro.parallel.taskgraph.resolve_oversub`) so the stealing
    scheduler has slack to absorb skewed per-tile costs.
    """
    from repro.parallel.taskgraph import resolve_oversub

    return resolve_oversub(), tuned_block_size(compiled, n_procs, plan=plan)
