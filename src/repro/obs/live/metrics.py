"""Streaming metrics: counters, gauges, and log-bucketed histograms.

A :class:`MetricsRegistry` is a labelled metric store with an incremental
flush/absorb protocol, the live counterpart of the post-hoc ``Trace``:

* **Workers flush deltas.**  A pool worker updates its private registry
  (inherited at fork) and ships :meth:`MetricsRegistry.flush` payloads —
  *deltas since the previous flush* — over the existing result channel.
  Counters ship increments, histograms ship per-bucket count deltas,
  gauges ship last-written values, so payload size is bounded by the
  number of touched series, never by run length.
* **The serve loop absorbs.**  :meth:`MetricsRegistry.absorb` folds a
  flush payload into an aggregating registry; absorption is associative,
  so any number of workers can feed one parent.
* **Histograms are log-bucketed.**  Observations land in geometric
  buckets (4 per doubling above one microsecond), giving p50/p90/p99
  readout with bounded error (~19 % bucket width) and O(#buckets) memory
  regardless of sample count.

The module-level :data:`LIVE` registry is the per-process aggregate that
``/metrics`` and ``python -m repro.obs top`` read.
"""

from __future__ import annotations

import math
import threading

#: Histogram bucketing: upper bounds ``BASE * GROWTH**i`` seconds.  Four
#: buckets per doubling keeps quantile error under ~19 %.
HIST_BASE = 1e-6
HIST_GROWTH = 2.0 ** 0.25
_LOG_GROWTH = math.log(HIST_GROWTH)


def bucket_index(value: float) -> int:
    """Index of the log bucket whose upper bound first covers ``value``."""
    if value <= HIST_BASE:
        return 0
    return int(math.ceil(math.log(value / HIST_BASE) / _LOG_GROWTH - 1e-9))


def bucket_upper(index: int) -> float:
    """Upper bound (seconds) of log bucket ``index``."""
    return HIST_BASE * HIST_GROWTH ** index


class Counter:
    """A monotonically increasing value; flushes the delta since last flush."""

    __slots__ = ("value", "_delta")

    def __init__(self):
        self.value = 0.0
        self._delta = 0.0

    def inc(self, n: float = 1.0) -> None:
        self.value += n
        self._delta += n


class Gauge:
    """A last-write-wins value (queue depth, pool size, ...)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, n: float = 1.0) -> None:
        self.value += n


class Histogram:
    """Log-bucketed distribution with streaming quantile readout."""

    __slots__ = ("counts", "total", "sum", "_delta", "_delta_sum")

    def __init__(self):
        self.counts: dict[int, int] = {}
        self.total = 0
        self.sum = 0.0
        self._delta: dict[int, int] = {}
        self._delta_sum = 0.0

    def observe(self, value: float) -> None:
        b = bucket_index(value)
        self.counts[b] = self.counts.get(b, 0) + 1
        self._delta[b] = self._delta.get(b, 0) + 1
        self.total += 1
        self.sum += value
        self._delta_sum += value

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the covering bucket."""
        if self.total <= 0:
            return 0.0
        target = q * self.total
        seen = 0
        for b in sorted(self.counts):
            seen += self.counts[b]
            if seen >= target:
                return bucket_upper(b)
        return bucket_upper(max(self.counts))

    def percentiles(self) -> dict[str, float]:
        return {
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Labelled metric store with a delta flush/absorb protocol.

    >>> worker, parent = MetricsRegistry(), MetricsRegistry()
    >>> worker.counter("blocks", rank="0").inc(3)
    >>> parent.absorb(worker.flush())
    >>> worker.counter("blocks", rank="0").inc(2)
    >>> parent.absorb(worker.flush())        # only the new increment ships
    >>> parent.counter("blocks", rank="0").value
    5.0
    """

    def __init__(self):
        self._metrics: dict[tuple, object] = {}
        self._kinds: dict[str, str] = {}
        # Guards series *creation* and flush/absorb; single increments on
        # an existing series stay lock-free (one attribute update).
        self._lock = threading.Lock()

    # -- access --------------------------------------------------------------
    def _series(self, kind: str, name: str, labels: dict):
        key = (name, tuple(sorted(labels.items())))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                known = self._kinds.setdefault(name, kind)
                if known != kind:
                    raise TypeError(
                        f"metric {name!r} already registered as {known}"
                    )
                metric = self._metrics.setdefault(key, _KINDS[kind]())
        elif metric.__class__ is not _KINDS[kind]:
            raise TypeError(
                f"metric {name!r} already registered as"
                f" {self._kinds.get(name, type(metric).__name__)}"
            )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._series("counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._series("gauge", name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._series("histogram", name, labels)

    def value(self, name: str, default: float = 0.0, **labels) -> float:
        """Current value of a counter/gauge series, without creating it."""
        key = (name, tuple(sorted(labels.items())))
        metric = self._metrics.get(key)
        return default if metric is None else metric.value

    # -- flush / absorb ------------------------------------------------------
    def flush(self) -> dict:
        """Ship deltas since the previous flush (and reset them)."""
        with self._lock:
            counters, gauges, hists = [], [], []
            for (name, labels), metric in self._metrics.items():
                if isinstance(metric, Counter):
                    if metric._delta:
                        counters.append([name, labels, metric._delta])
                        metric._delta = 0.0
                elif isinstance(metric, Gauge):
                    gauges.append([name, labels, metric.value])
                else:
                    if metric._delta:
                        hists.append([
                            name, labels,
                            list(metric._delta.items()), metric._delta_sum,
                        ])
                        metric._delta = {}
                        metric._delta_sum = 0.0
            return {"counters": counters, "gauges": gauges, "hists": hists}

    def absorb(self, payload: dict) -> None:
        """Fold a :meth:`flush` payload (possibly from another process) in."""
        if not payload:
            return
        for name, labels, delta in payload.get("counters", ()):
            self._series("counter", name, dict(labels)).inc(delta)
        for name, labels, value in payload.get("gauges", ()):
            self._series("gauge", name, dict(labels)).set(value)
        for name, labels, buckets, delta_sum in payload.get("hists", ()):
            hist = self._series("histogram", name, dict(labels))
            added = 0
            for b, n in buckets:
                b = int(b)
                hist.counts[b] = hist.counts.get(b, 0) + n
                hist._delta[b] = hist._delta.get(b, 0) + n
                added += n
            hist.total += added
            hist.sum += delta_sum
            hist._delta_sum += delta_sum

    # -- readout -------------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-ready readout of every series."""
        counters, gauges, histograms = [], [], []
        for (name, labels), metric in sorted(
            self._metrics.items(), key=lambda kv: kv[0]
        ):
            entry = {"name": name, "labels": dict(labels)}
            if isinstance(metric, Counter):
                counters.append({**entry, "value": metric.value})
            elif isinstance(metric, Gauge):
                gauges.append({**entry, "value": metric.value})
            else:
                histograms.append({
                    **entry,
                    "count": metric.total,
                    "sum": metric.sum,
                    **metric.percentiles(),
                })
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def series(self):
        """Iterate ``(name, labels_dict, kind, metric)`` in sorted order."""
        for (name, labels), metric in sorted(
            self._metrics.items(), key=lambda kv: kv[0]
        ):
            if isinstance(metric, Counter):
                kind = "counter"
            elif isinstance(metric, Gauge):
                kind = "gauge"
            else:
                kind = "histogram"
            yield name, dict(labels), kind, metric

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()
            self._kinds.clear()


def worker_table(registry: MetricsRegistry) -> dict[str, dict[str, float]]:
    """Group ``repro_pool_worker_*`` series by rank, for ``obs top``."""
    table: dict[str, dict[str, float]] = {}
    prefix = "repro_pool_worker_"
    for name, labels, kind, metric in registry.series():
        if not name.startswith(prefix) or "rank" not in labels:
            continue
        row = table.setdefault(labels["rank"], {})
        row[name[len(prefix):]] = metric.value
    return table


def fabric_summary(registry: MetricsRegistry) -> dict[str, float]:
    """Aggregate the multicast-fabric series across ranks, for ``obs top``.

    Empty when no multicast run has happened — the dashboards use that to
    hide the fabric line entirely on pipe-only deployments.
    """
    releases = flips = 0.0
    overlap = 0.0
    for name, _labels, _kind, metric in registry.series():
        if name == "repro_multicast_releases_total":
            releases += metric.value
        elif name == "repro_boundary_buffer_flips_total":
            flips += metric.value
        elif name == "repro_multicast_overlap_seconds":
            overlap += metric.value
    if not (releases or flips or overlap):
        return {}
    return {
        "multicast_releases": releases,
        "buffer_flips": flips,
        "overlap_seconds": overlap,
    }


#: The per-process aggregate registry ``/metrics`` and ``obs top`` read.
LIVE = MetricsRegistry()
