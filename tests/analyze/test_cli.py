"""The ``python -m repro.analyze`` command line.

Includes the env-knob satellite: linting under the deprecated
``REPRO_KERNELS`` alias and the ``REPRO_SKEW=0`` kill switch must behave
identically — lint never executes a program, so it must never touch the
kernel layer those knobs configure (``KERNEL_STATS`` stays frozen) and
never mutate array storage.
"""

import json

import numpy as np
import pytest

from repro.analyze.cli import main
from repro.analyze.diagnostics import validate_report
from repro.runtime import KERNEL_STATS


@pytest.fixture
def zpl_file(tmp_path):
    def write(source, name="t.zpl"):
        path = tmp_path / name
        path.write_text(source)
        return str(path)

    return write


CLEAN = (
    "#! arrays: a[1..400, 1..400] = 0.5\n"
    "#! constants: n = 400\n"
    "[2..n, 1..n] scan  a := 0.9 * a'@north + 0.1;  end;\n"
)
BROKEN = (
    "#! arrays: a[1..16, 1..16], b[1..16, 1..16]\n"
    "#! constants: n = 16\n"
    "[2..n, 1..n] scan  a := b'@north;  end;\n"
)


def test_lint_clean_file_exits_zero(zpl_file, capsys):
    assert main(["lint", zpl_file(CLEAN)]) == 0
    out = capsys.readouterr().out
    assert "0 error(s), 0 warning(s), 0 info(s)" in out


def test_lint_error_file_exits_one(zpl_file, capsys):
    assert main(["lint", zpl_file(BROKEN)]) == 1
    out = capsys.readouterr().out
    assert "error[E001]" in out
    assert "  --> " in out and "^" in out  # excerpt with carets


def test_lint_parse_error_is_e000(zpl_file, capsys):
    assert main(["lint", zpl_file("[1..4] scan a := ;; end;")]) == 1
    assert "error[E000]" in capsys.readouterr().out


def test_lint_nothing_is_usage_error(capsys):
    assert main(["lint"]) == 2


def test_lint_json_validates_schema(zpl_file, capsys):
    assert main(["lint", zpl_file(BROKEN), "--json"]) == 1
    reports = json.loads(capsys.readouterr().out)
    assert isinstance(reports, list) and len(reports) == 1
    for report in reports:
        validate_report(report)
    assert reports[0]["counts"]["error"] >= 1
    assert reports[0]["diagnostics"][0]["span"] is not None


def test_lint_pass_filter(zpl_file, capsys):
    # Restricting to 'unused' silences the small-problem W107.
    source = (
        "#! arrays: a[1..16, 1..16], dead[1..16, 1..16]\n"
        "#! constants: n = 16\n"
        "[2..n, 1..n] scan  a := a'@north;  end;\n"
    )
    assert main(["lint", zpl_file(source), "--pass", "unused", "--json"]) == 0
    reports = json.loads(capsys.readouterr().out)
    codes = [d["code"] for d in reports[0]["diagnostics"]]
    assert codes == ["W101"]


def test_lint_suite_all_entries_clean(capsys):
    assert main(["lint", "--suite", "--n", "96"]) == 0
    out = capsys.readouterr().out
    for name in ("single-stream", "tomcatv-fragment", "dp", "gauss-seidel"):
        assert f"suite:{name}: 0 error(s)" in out


def test_explain_adds_info_diagnostics(zpl_file, capsys):
    assert main(["explain", zpl_file(CLEAN), "--json"]) == 0
    reports = json.loads(capsys.readouterr().out)
    codes = [d["code"] for d in reports[0]["diagnostics"]]
    assert "I302" in codes


def test_repro_examples_lint_clean():
    from pathlib import Path

    examples = Path(__file__).resolve().parents[2] / "examples"
    files = sorted(str(p) for p in examples.glob("*.zpl"))
    assert files, "repo examples/*.zpl missing"
    assert main(["lint", *files]) == 0


def test_lint_untouched_by_kernel_env_knobs(zpl_file, capsys, monkeypatch):
    """REPRO_KERNELS (deprecated alias) and REPRO_SKEW=0 don't change lint.

    Lint never executes: the kernel layer the knobs configure must stay
    completely cold (no template/plan builds, no fallbacks), and the output
    must be byte-identical with and without the knobs.
    """
    path = zpl_file(BROKEN)
    assert main(["lint", path, "--json"]) == 1
    baseline = capsys.readouterr().out

    monkeypatch.setenv("REPRO_KERNELS", "interp")  # deprecated alias
    monkeypatch.setenv("REPRO_SKEW", "0")  # skew kill switch
    KERNEL_STATS.reset()
    before = KERNEL_STATS.snapshot()
    assert main(["lint", path, "--json"]) == 1
    assert capsys.readouterr().out == baseline
    assert KERNEL_STATS.snapshot() == before  # no kernel activity at all


def test_lint_suite_builds_no_kernel_plans(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SKEW", "0")
    KERNEL_STATS.reset()
    assert main(["lint", "--suite", "--n", "48"]) == 0
    capsys.readouterr()
    stats = KERNEL_STATS.snapshot()
    assert all(v == 0 for v in stats.values()), stats


def test_lint_does_not_mutate_pragma_arrays(zpl_file, capsys):
    # The dead-mask pass reads storage; nothing may write it.
    source = (
        "#! arrays: a[1..16, 1..16] = 0.5, m[1..16, 1..16]\n"
        "#! constants: n = 16\n"
        "[2..n, 1..n with m] scan  a := a'@north;  end;\n"
    )
    from repro.analyze.cli import _lint_file

    diagnostics, _ = _lint_file(zpl_file(source))
    assert "W105" in [d.code for d in diagnostics]
    # Re-lint: identical diagnostics (storage unchanged between runs).
    again, _ = _lint_file(zpl_file(source))
    assert [d.code for d in again] == [d.code for d in diagnostics]


def test_pragma_fill_values(zpl_file):
    from repro.analyze.cli import _parse_pragmas

    arrays, constants = _parse_pragmas(
        "#! arrays: a[1..8, 1..8] = 1.5, b[2..9, 1..4]\n#! constants: n = 8\n"
    )
    assert constants == {"n": 8}
    assert set(arrays) == {"a", "b"}
    assert np.all(arrays["a"].to_numpy() == 1.5)
    assert np.all(arrays["b"].to_numpy() == 0.0)
    assert arrays["b"].region.ranges == ((2, 9), (1, 4))
