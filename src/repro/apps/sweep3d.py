"""SWEEP3D-style discrete-ordinates transport sweep (paper Section 1).

The ASCI SWEEP3D benchmark — the paper's motivating wavefront computation —
solves the first-order discrete-ordinates transport equation by sweeping a
3-D grid once per angular *octant*: for the (+,+,+) octant the flux at cell
(i,j,k) depends on the already-computed fluxes at (i-1,j,k), (i,j-1,k) and
(i,j,k-1); the other seven octants mirror the directions.  Each sweep is a
3-D wavefront, expressed here as one scan block per octant:

    phi := (src + w_i*phi'@di + w_j*phi'@dj + w_k*phi'@dk) / (sigma + w)

The paper notes the production code spends 626 lines on the explicit MPI
implementation of which only 179 are the physics; the scan-block form below
is the whole computation.

The scalar flux accumulates octant contributions; the source iteration
repeats sweeps until the flux stabilises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

import numpy as np

from repro import zpl
from repro.compiler import compile_scan
from repro.compiler.lowering import CompiledScan
from repro.models.amdahl import PhaseKind, ProgramProfile
from repro.runtime import execute_vectorized
from repro.zpl import Direction, Region, ZArray

#: The eight octants as sign triples for the (i, j, k) sweep directions.
OCTANTS: tuple[tuple[int, int, int], ...] = tuple(product((1, -1), repeat=3))


@dataclass
class Sweep3DState:
    """Arrays of one transport instance over ``[1..n]^3``."""

    n: int
    phi: ZArray  # angular flux workspace (per octant)
    flux: ZArray  # accumulated scalar flux
    src: ZArray  # emission source
    sigma: ZArray  # total cross-section
    #: Upwind coupling weights per axis.
    weights: tuple[float, float, float] = (0.3, 0.3, 0.3)
    history: list[float] = field(default_factory=list)

    @property
    def interior(self) -> Region:
        return Region.square(2, self.n - 1, rank=3)

    def arrays(self) -> tuple[ZArray, ...]:
        return (self.phi, self.flux, self.src, self.sigma)


def build(n: int, seed: int = 1) -> Sweep3DState:
    """A transport instance: a central source in a mildly varying medium."""
    if n < 4:
        raise ValueError(f"sweep3d needs n >= 4, got {n}")
    base = Region.square(1, n, rank=3)
    rng = np.random.default_rng(seed)
    i = np.arange(1, n + 1, dtype=float)
    ii, jj, kk = np.meshgrid(i, i, i, indexing="ij")
    blob = np.exp(-((ii - n / 2) ** 2 + (jj - n / 2) ** 2 + (kk - n / 2) ** 2)
                  / (n / 4) ** 2)
    state = Sweep3DState(
        n=n,
        phi=zpl.zeros(base, name="phi"),
        flux=zpl.zeros(base, name="flux"),
        src=zpl.zeros(base, name="src"),
        sigma=zpl.ZArray(base, name="sigma", fill=1.0),
    )
    state.src.load(blob)
    state.sigma.load(1.0 + 0.2 * rng.random((n, n, n)))
    return state


def octant_directions(octant: tuple[int, int, int]) -> tuple[Direction, ...]:
    """The three upwind shift directions for an octant.

    For a +1 sweep along an axis the upwind neighbour is at offset -1.
    """
    dirs = []
    for axis, sign in enumerate(octant):
        offsets = [0, 0, 0]
        offsets[axis] = -sign
        dirs.append(Direction(tuple(offsets)))
    return tuple(dirs)


def record_octant_block(
    state: Sweep3DState, octant: tuple[int, int, int]
) -> zpl.ScanBlock:
    """The scan block of one octant sweep."""
    phi, src, sigma = state.phi, state.src, state.sigma
    di, dj, dk = octant_directions(octant)
    wi, wj, wk = state.weights
    with zpl.covering(state.interior):
        with zpl.scan(name=f"sweep-octant{octant}", execute=False) as block:
            phi[...] = (
                src + wi * (phi.p @ di) + wj * (phi.p @ dj) + wk * (phi.p @ dk)
            ) / (sigma + (wi + wj + wk))
    return block


def compile_octant(state: Sweep3DState, octant: tuple[int, int, int]) -> CompiledScan:
    """Compiled sweep for one octant."""
    return compile_scan(record_octant_block(state, octant))


def sweep_octant(
    state: Sweep3DState, octant: tuple[int, int, int], engine=execute_vectorized
) -> None:
    """One octant: reset the workspace, sweep, accumulate into the flux."""
    state.phi.fill(0.0)
    engine(compile_octant(state, octant))
    with zpl.covering(state.interior):
        state.flux[...] = state.flux + state.phi / float(len(OCTANTS))


def source_iteration(state: Sweep3DState, engine=execute_vectorized) -> float:
    """One full source iteration: all eight octants; returns total flux."""
    state.flux.fill(0.0)
    for octant in OCTANTS:
        sweep_octant(state, octant, engine)
    total = float(state.flux.read(state.interior).sum())
    state.history.append(total)
    return total


def profile(n: int, iterations: int = 1) -> ProgramProfile:
    """Phase structure: eight wavefront sweeps plus parallel accumulation."""
    interior = (n - 2) ** 3
    prog = ProgramProfile(f"sweep3d(n={n})")
    for octant in OCTANTS:
        prog.add(f"sweep{octant}", PhaseKind.WAVEFRONT, 1.0 * interior, iterations)
        prog.add(f"accumulate{octant}", PhaseKind.PARALLEL, 0.2 * interior, iterations)
    return prog
