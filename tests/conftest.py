"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import zpl


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def make_tomcatv_arrays(n: int, rng: np.random.Generator | None = None):
    """Arrays for the paper's Tomcatv fragment (Fig. 2), randomly initialised.

    Returns ``(R, aa, d, dd, rx, ry, r)`` where ``R`` is the covering region
    ``[2..n-2, 2..n-1]`` and all arrays are declared over ``[1..n, 1..n]``.
    ``dd`` is kept away from zero so the reciprocal stays well-conditioned.
    """
    rng = rng or np.random.default_rng(99)
    base = zpl.Region.square(1, n)
    R = zpl.Region.of((2, n - 2), (2, n - 1))
    arrays = {}
    for name in ("aa", "d", "dd", "rx", "ry", "r"):
        arr = zpl.ZArray(base, name=name)
        arr.load(rng.uniform(0.5, 1.5, size=base.shape))
        arrays[name] = arr
    arrays["dd"].load(rng.uniform(3.0, 4.0, size=base.shape))
    return (R, arrays["aa"], arrays["d"], arrays["dd"], arrays["rx"],
            arrays["ry"], arrays["r"])


def record_tomcatv_block(n: int, rng: np.random.Generator | None = None):
    """Record (without executing) the Tomcatv scan block of paper Fig. 2(b).

    Returns ``(block, arrays)`` where ``arrays`` is the tuple of all six
    ZArrays in ``(aa, d, dd, rx, ry, r)`` order.
    """
    R, aa, d, dd, rx, ry, r = make_tomcatv_arrays(n, rng)
    with zpl.covering(R):
        with zpl.scan(name="tomcatv", execute=False) as block:
            r[...] = aa * (d.p @ zpl.NORTH)
            d[...] = 1.0 / (dd - (aa @ zpl.NORTH) * r)
            rx[...] = rx - (rx.p @ zpl.NORTH) * r
            ry[...] = ry - (ry.p @ zpl.NORTH) * r
    return block, (aa, d, dd, rx, ry, r)


def tomcatv_fragment_oracle(n: int, aa, d, dd, rx, ry, r):
    """Plain-numpy oracle for the Fig. 1(a) Fortran 77 loops.

    Operates on copies of the ZArrays' declared values (1-based global
    indices mapped to 0-based numpy indices) and returns the final
    ``(r, d, rx, ry)`` declared-region values.
    """
    AA, D, DD, RX, RY, RR = (x.to_numpy() for x in (aa, d, dd, rx, ry, r))

    def g(i: int, j: int) -> tuple[int, int]:
        return i - 1, j - 1  # global index -> 0-based

    for i in range(2, n - 1):          # DO i = 2, n-2 (wavefront rows)
        for j in range(2, n):          # DO j = 2, n-1 (parallel columns)
            gi, gj = g(i, j)
            up = g(i - 1, j)
            rr = AA[gi, gj] * D[up]
            RR[gi, gj] = rr
            D[gi, gj] = 1.0 / (DD[gi, gj] - AA[up] * rr)
            RX[gi, gj] = RX[gi, gj] - RX[up] * rr
            RY[gi, gj] = RY[gi, gj] - RY[up] * rr
    return RR, D, RX, RY
