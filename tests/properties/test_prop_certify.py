"""Property: the certifier accepts every planner-generated schedule.

Soundness has the mutation harness; this is the completeness half: random
legal scan blocks — masked, contracted, with drawn per-dimension direction
signs and block sizes — must certify with *zero* errors at every
pseudo-schedule (naive, pipelined pipes, pipelined multicast, taskgraph)
the planner agrees to run.  A false positive here would make
``REPRO_CERTIFY=1`` reject a schedule the executor proves correct by
construction.  Configurations the planner itself refuses (no chunkable
dimension, chain-illegal lookahead, rank constraints) are skipped: the
CLI maps those refusals to W110, not to proofs.
"""

from hypothesis import HealthCheck, given, settings

from repro.analyze.certify import (
    PSEUDO_SCHEDULES,
    build_schedule_model,
    certify_model,
    schedule_kwargs,
)
from repro.errors import MachineError
from tests.properties.test_prop_taskgraph_equivalence import (
    N_PROCS,
    taskgraph_programs,
)


@given(taskgraph_programs())
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_planner_schedules_certify_clean(program):
    compiled, arrays, block_size = program
    modelled = 0
    for pseudo in PSEUDO_SCHEDULES:
        try:
            model = build_schedule_model(
                compiled,
                grid=N_PROCS,
                block=block_size,
                **schedule_kwargs(pseudo),
            )
        except MachineError:
            continue  # the executor would refuse this config natively
        diagnostics = certify_model(model)
        assert diagnostics == [], (
            f"false positive at {pseudo}: "
            + "; ".join(f"{d.code}: {d.message}" for d in diagnostics)
        )
        modelled += 1
    # Some drawn programs are refused by every schedule (e.g. a dependence
    # flowing against the traversal on the distributed dimension) — that is
    # the executor's call, not the certifier's; there is nothing to prove.
