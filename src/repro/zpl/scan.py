"""Scan blocks: the paper's compound statement for wavefront computations.

A scan block groups statements whose primed references may name values written
by *any* statement in the block during previous iterations of the implementing
loop nest (paper Section 2.2).  The block records statements; compilation
(legality checking, loop-structure derivation, lowering) lives in
:mod:`repro.compiler` and is reached through :meth:`ScanBlock.compile`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.errors import LegalityError
from repro.zpl.arrays import ZArray
from repro.zpl.regions import Region
from repro.zpl.statements import Assign

if TYPE_CHECKING:  # pragma: no cover
    from repro.compiler.lowering import CompiledScan


class ScanBlock:
    """An ordered group of statements forming one wavefront computation."""

    def __init__(self, name: str | None = None):
        self.name = name
        self.statements: list[Assign] = []

    def append(self, statement: Assign) -> None:
        """Record one statement (in lexical order)."""
        self.statements.append(statement)

    def __len__(self) -> int:
        return len(self.statements)

    def __iter__(self) -> Iterator[Assign]:
        return iter(self.statements)

    @property
    def region(self) -> Region:
        """The common covering region of all statements."""
        if not self.statements:
            raise LegalityError("scan block is empty")
        return self.statements[0].region

    @property
    def rank(self) -> int:
        """The common rank of all statements."""
        return self.region.rank

    def written_arrays(self) -> tuple[ZArray, ...]:
        """Arrays defined (assigned) by the block, in first-write order."""
        seen: list[ZArray] = []
        for stmt in self.statements:
            if not any(stmt.target is a for a in seen):
                seen.append(stmt.target)
        return tuple(seen)

    def writes(self, array: ZArray) -> bool:
        """True when ``array`` is assigned anywhere in the block."""
        return any(stmt.target is array for stmt in self.statements)

    def primed_directions(self) -> tuple:
        """Directions of every primed reference, in order of appearance.

        These are the inputs to the wavefront summary vector (Section 2.2).
        """
        dirs = []
        for stmt in self.statements:
            for ref in stmt.expr.refs():
                if ref.primed:
                    dirs.append(ref.offset)
        return tuple(dirs)

    def compile(self) -> "CompiledScan":
        """Run the full compilation pipeline on this block.

        Returns a :class:`repro.compiler.lowering.CompiledScan` carrying the
        legality verdict, wavefront summary vector, derived loop structure and
        the lowered loop-nest IR.  Raises a :class:`repro.errors.LegalityError`
        subclass when any of the five static checks fails.
        """
        from repro.compiler import compile_scan  # late: layering

        return compile_scan(self)

    def __repr__(self) -> str:
        label = self.name or "scan"
        body = "; ".join(repr(s) for s in self.statements)
        return f"<{label}: {body}>"
