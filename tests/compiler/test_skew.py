"""Tests for the hyperplane-skewing pass: τ derivation and legality."""

import pytest

from repro import zpl
from repro.apps.alignment import build_score_block
from repro.compiler import (
    DepKind,
    Dependence,
    LoopStructure,
    Skew,
    compile_scan,
    derive_skew,
    derive_time_vector,
    legal_time_vector,
    looped_dims,
)
from repro.compiler.skew import MAX_SKEW_RANK
from repro.compiler.wsv import DimClass


def dep(vector, kind=DepKind.TRUE):
    return Dependence(tuple(vector), kind, 0, 0, "a")


def loops2(signs=(1, 1), classes=(DimClass.SERIAL, DimClass.PIPELINED)):
    return LoopStructure((0, 1), tuple(signs), tuple(classes))


class TestLegality:
    def test_true_dep_needs_strictly_positive_dot(self):
        assert legal_time_vector((1, 1), (0, 1), [dep((1, 1))])
        assert legal_time_vector((1, 1), (0, 1), [dep((1, 0)), dep((0, 1))])
        # τ·d == 0: the producer would land on the same hyperplane.
        assert not legal_time_vector((1, -1), (0, 1), [dep((1, 1))])
        # τ·d < 0: the producer would land on a *later* hyperplane.
        assert not legal_time_vector((1, 1), (0, 1), [dep((-1, 0))])

    def test_zero_restricted_true_dep_is_loop_independent(self):
        # A true dep with only parallel components is satisfied by lexical
        # statement order within a hyperplane.
        assert legal_time_vector((1,), (0,), [dep((0, 3))])

    def test_anti_and_output_allow_ties(self):
        for kind in (DepKind.ANTI, DepKind.OUTPUT):
            assert legal_time_vector((1, 1), (0, 1), [dep((1, -1), kind)])
            assert not legal_time_vector((1, 1), (0, 1), [dep((-1, 0), kind)])

    def test_refuses_when_no_positive_dot_exists(self):
        # (1, -1) and (-1, 1) pull τ in opposite directions: any τ with
        # τ·(1,-1) > 0 has τ·(-1,1) < 0.  No legal time vector exists.
        deps = [dep((1, -1)), dep((-1, 1))]
        for tau in ((1, 1), (1, 2), (2, 1), (1, 3), (3, 1)):
            assert not legal_time_vector(tau, (0, 1), deps)
        assert derive_time_vector(loops2(), deps) is None


class TestDerivation:
    def test_canonical_antidiagonal(self):
        skew = derive_time_vector(
            loops2(), [dep((1, 1)), dep((1, 0)), dep((0, 1))]
        )
        assert skew == Skew((0, 1), (1, 1))

    def test_descending_traversal_flips_tau(self):
        skew = derive_time_vector(
            loops2(signs=(-1, -1)), [dep((-1, -1)), dep((-1, 0)), dep((0, -1))]
        )
        assert skew == Skew((0, 1), (-1, -1))

    def test_needs_scaled_component(self):
        # (2, -1) forces 2*τ0 > τ1 while (0, 1) forces τ1 > 0: the plain
        # anti-diagonal fails, a scaled τ succeeds.
        skew = derive_time_vector(loops2(), [dep((2, -1)), dep((0, 1))])
        assert skew is not None
        assert skew.time((2, -1)) > 0 and skew.time((0, 1)) > 0

    def test_single_looped_dim_declines(self):
        loops = LoopStructure(
            (0, 1), (1, 1), (DimClass.PIPELINED, DimClass.PARALLEL)
        )
        assert derive_time_vector(loops, [dep((1, 0))]) is None

    def test_rank_cap(self):
        rank = MAX_SKEW_RANK + 1
        loops = LoopStructure(
            tuple(range(rank)), (1,) * rank, (DimClass.SERIAL,) * rank
        )
        assert derive_time_vector(loops, [dep((1,) * rank)]) is None

    def test_parallel_dims_excluded(self):
        loops = LoopStructure(
            (0, 1, 2),
            (1, 1, 1),
            (DimClass.SERIAL, DimClass.PARALLEL, DimClass.PIPELINED),
        )
        assert looped_dims(loops) == (0, 2)
        skew = derive_time_vector(loops, [dep((1, 0, 1)), dep((1, 0, 0))])
        assert skew is not None and skew.dims == (0, 2)

    def test_time_orders_points(self):
        skew = Skew((0, 1), (1, 2))
        assert skew.time((3, 4)) == 11
        assert skew.rank == 2


class TestCompiledBlocks:
    def test_alignment_block_is_skewable(self):
        compiled, _ = build_score_block("GATTACA", "GCATGCU")
        skew = derive_skew(compiled)
        assert skew is not None
        assert skew.tau == (1, 1)

    def test_tomcatv_style_block_declines(self):
        # One pipelined dim + one parallel dim: nothing to skew.
        n = 8
        a = zpl.ones(zpl.Region.square(1, n), name="a")
        with zpl.covering(zpl.Region.of((2, n), (1, n))):
            with zpl.scan(execute=False) as block:
                a[...] = (a.p @ zpl.NORTH) * 0.5
        assert derive_skew(compile_scan(block)) is None
