"""Exception hierarchy for the wavefront reproduction library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch one type.  The compiler-facing errors mirror the statically checked
legality conditions of the paper's Section 2.2:

* :class:`LegalityError` — any violation of the five static legality checks.
* :class:`OverconstrainedScanError` — condition (ii): the directions on primed
  references admit no loop nest (e.g. primed ``@north`` and ``@south``).
* :class:`RankMismatchError` — condition (iii): statements of differing rank in
  one scan block.
* :class:`RegionMismatchError` — condition (iv): statements covered by
  different regions in one scan block.
* :class:`PrimedOperandError` — conditions (i) and (v): a primed array that is
  never defined in the block, or a parallel operator with a primed operand.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class RegionError(ReproError):
    """Malformed region: bad bounds, rank mismatch in region algebra, etc."""


class DirectionError(ReproError):
    """Malformed direction vector (zero length, non-integer offsets, ...)."""


class ArrayError(ReproError):
    """Invalid parallel-array operation (read outside storage, dtype clash)."""


class ExpressionError(ReproError):
    """Malformed expression tree (rank clash, prime outside scan, ...)."""


class LegalityError(ReproError):
    """A scan block violates one of the statically checked legality rules."""


class OverconstrainedScanError(LegalityError):
    """No loop nest can respect the dependences of this scan block."""


class RankMismatchError(LegalityError):
    """Statements of different rank may not share a scan block."""


class RegionMismatchError(LegalityError):
    """All statements in a scan block must be covered by the same region."""


class PrimedOperandError(LegalityError):
    """Primed reference is illegal here (undefined in block / parallel op)."""


class CompilationError(ReproError):
    """Internal compilation failure that is not a user legality error."""


class MachineError(ReproError):
    """Invalid machine configuration or simulation request."""


class DistributionError(MachineError):
    """Invalid data distribution (more processors than elements, ...)."""


class CommunicationError(MachineError):
    """Protocol error in the simulated message-passing layer."""


class DeadlockError(CommunicationError):
    """The discrete-event simulation reached a state with no runnable work."""


class CacheConfigError(ReproError):
    """Invalid cache geometry (non-power-of-two line size, zero ways, ...)."""


class ModelError(ReproError):
    """Invalid analytic-model parameters (negative alpha, p < 2, ...)."""
