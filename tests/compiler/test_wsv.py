"""Tests for wavefront summary vectors — including the paper's Examples 1-4."""

import pytest

from repro import zpl
from repro.compiler.wsv import DimClass, Sign, WSV, classify, f, wsv_of
from repro.errors import DirectionError


class TestCombinatorF:
    """The paper's f(i, j) definition, case by case."""

    def test_both_zero(self):
        assert f(0, 0) is Sign.ZERO

    def test_opposite_signs(self):
        assert f(-1, 1) is Sign.BOTH
        assert f(2, -3) is Sign.BOTH

    def test_positive(self):
        assert f(1, 0) is Sign.PLUS
        assert f(0, 2) is Sign.PLUS
        assert f(1, 2) is Sign.PLUS

    def test_negative(self):
        assert f(-1, 0) is Sign.MINUS
        assert f(0, -2) is Sign.MINUS
        assert f(-1, -2) is Sign.MINUS


class TestPaperWSVExamples:
    """The four worked WSV constructions from Section 2.2."""

    def test_wsv_two_norths(self):
        # WSV({(-1,0), (-2,0)}) = (-, 0)
        w = wsv_of([(-1, 0), (-2, 0)])
        assert repr(w) == "(-,0)"
        assert w.is_simple()

    def test_wsv_mixed_second_dim(self):
        # WSV({(-1,0), (-2,0), (-1,2)}) = (-, +)
        w = wsv_of([(-1, 0), (-2, 0), (-1, 2)])
        assert repr(w) == "(-,+)"
        assert w.is_simple()

    def test_wsv_north_west(self):
        # WSV({(-1,0), (0,-1)}) = (-, -)
        w = wsv_of([(-1, 0), (0, -1)])
        assert repr(w) == "(-,-)"
        assert w.is_simple()

    def test_wsv_not_simple(self):
        # WSV({(-1,0), (1,-2)}) = (±, -)
        w = wsv_of([(-1, 0), (1, -2)])
        assert repr(w) == "(±,-)"
        assert not w.is_simple()


class TestWSVConstruction:
    def test_empty_needs_rank(self):
        with pytest.raises(DirectionError):
            wsv_of([])

    def test_empty_with_rank_is_trivial(self):
        w = wsv_of([], rank=3)
        assert w.is_trivial()
        assert w.rank == 3

    def test_rank_mismatch_rejected(self):
        with pytest.raises(DirectionError):
            wsv_of([(-1, 0), (0, 0, 1)])

    def test_accepts_direction_objects(self):
        assert wsv_of([zpl.NORTH]).signs == (Sign.MINUS, Sign.ZERO)

    def test_order_insensitive(self):
        assert wsv_of([(-1, 0), (1, 1)]) == wsv_of([(1, 1), (-1, 0)])

    def test_tomcatv_wsv(self):
        # Section 2.2 summary: only north appears; WSV is trivially (-, 0).
        w = wsv_of([zpl.NORTH, zpl.NORTH, zpl.NORTH])
        assert repr(w) == "(-,0)"


class TestClassification:
    """Section 2.2's three classification cases, driven by true-dep UDVs.

    Note the UDVs are the *negated* primed directions.
    """

    def test_example1(self):
        # d1 = d2 = (-1, 0): WSV (-,0); dim 0 wavefront, dim 1 parallel.
        udvs = [(1, 0), (1, 0)]
        assert classify(udvs, 2) == (DimClass.PIPELINED, DimClass.PARALLEL)

    def test_example2(self):
        # d1 = (-1,0), d2 = (0,-1): WSV (-,-); case (iii): leftmost serial,
        # wavefront travels along (and pipelines) the second dimension.
        udvs = [(1, 0), (0, 1)]
        assert classify(udvs, 2) == (DimClass.SERIAL, DimClass.PIPELINED)

    def test_example3(self):
        # d1 = (-1,0), d2 = (1,1): WSV (±,+); case (ii): the ± dimension is
        # serialised, the second dimension is the wavefront dimension.
        udvs = [(1, 0), (-1, -1)]
        assert classify(udvs, 2) == (DimClass.SERIAL, DimClass.PIPELINED)

    def test_example4_classification_only(self):
        # d1 = (0,-1), d2 = (0,1): WSV (0,±).  (Legality fails elsewhere —
        # classification itself is still well-defined.)
        udvs = [(0, 1), (0, -1)]
        assert classify(udvs, 2) == (DimClass.PARALLEL, DimClass.SERIAL)

    def test_no_dependences_fully_parallel(self):
        assert classify([], 2) == (DimClass.PARALLEL, DimClass.PARALLEL)

    def test_rank1_wavefront_is_serial(self):
        # A rank-1 all-constrained wavefront has nothing to pipeline over.
        assert classify([(1,)], 1) == (DimClass.SERIAL,)

    def test_3d_sweep(self):
        # SWEEP3D-style: wavefront along all three dims; case (iii).
        udvs = [(1, 0, 0), (0, 1, 0), (0, 0, 1)]
        assert classify(udvs, 3) == (
            DimClass.SERIAL,
            DimClass.PIPELINED,
            DimClass.PIPELINED,
        )

    def test_case_i_with_both(self):
        # A 3-D case (i): a zero dim exists, the ± dim is serialised.
        udvs = [(1, 1, 0), (-1, 2, 0)]
        assert classify(udvs, 3) == (
            DimClass.SERIAL,
            DimClass.PIPELINED,
            DimClass.PARALLEL,
        )


class TestWSVValue:
    def test_equality_and_hash(self):
        assert wsv_of([(-1, 0)]) == WSV((Sign.MINUS, Sign.ZERO))
        assert hash(wsv_of([(-1, 0)])) == hash(WSV((Sign.MINUS, Sign.ZERO)))
