"""Pipeline phase analytics and model-residual reports.

Two analyses over the shared event schema (:mod:`repro.obs.trace`):

* :func:`analyze_phases` splits a run into the paper's Fig. 4 phases —
  **fill** (until the last processor starts its first block), **steady
  state**, and **drain** (after the first processor finishes its last
  block) — and reports per-worker utilisation and wait time plus the
  critical-path wait (the wait of the processor that finishes last).
  The three phases partition the traced window, so their coverage of
  wall time is 100% by construction.

* :func:`residual_table` compares each pipeline block's measured compute
  and wait time against the Section 4 model the paper's Equation (1)
  optimises: per stage, a block of width ``w`` should cost ``(n/p)·w``
  compute units and ``α + β·m·w`` per received token.  Because both the
  simulator and the real backend emit the same schema, the same residual
  code diagnoses both — model error in the virtual machine, measurement
  noise and dispatch overhead on the real one.

Both analyses work on whichever clock the trace carries; times are
printed in milliseconds for wall traces and raw units for virtual ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.trace import Trace


@dataclass(frozen=True)
class WorkerStat:
    """One processor's share of the traced window."""

    proc: int
    busy: float  # total compute-span time
    wait: float  # total recv-wait time
    first_compute: float
    last_compute: float
    utilization: float


@dataclass(frozen=True)
class PhaseReport:
    """The fill/steady/drain split of one traced run."""

    clock: str
    t0: float
    t_end: float
    fill_end: float
    drain_start: float
    workers: tuple[WorkerStat, ...]
    critical_path_wait: float

    @property
    def wall(self) -> float:
        return self.t_end - self.t0

    @property
    def fill(self) -> float:
        return self.fill_end - self.t0

    @property
    def steady(self) -> float:
        return self.drain_start - self.fill_end

    @property
    def drain(self) -> float:
        return self.t_end - self.drain_start

    @property
    def coverage(self) -> float:
        """Fraction of the traced window the three phases account for."""
        if self.wall <= 0:
            return 1.0
        return (self.fill + self.steady + self.drain) / self.wall

    @property
    def utilization(self) -> float:
        """Mean worker busy fraction over the traced window."""
        if not self.workers:
            return 0.0
        return sum(w.utilization for w in self.workers) / len(self.workers)


def analyze_phases(trace: Trace) -> PhaseReport:
    """Split a traced run into pipeline fill, steady state, and drain."""
    compute = [s for s in trace.worker_spans("compute")]
    if not compute:
        raise ValueError("trace has no compute spans; was tracing enabled?")
    waits = [s for s in trace.worker_spans("comm") if s.name == "recv_wait"]
    # The pipeline window: first compute/wait activity to last.  Setup
    # spans (process startup, barriers) are deliberately outside it — the
    # phases describe the pipeline, not process creation.
    pipeline = compute + waits
    t0 = min(s.start for s in pipeline)
    t_end = max(s.end for s in pipeline)

    per_proc: dict[int, dict] = {}
    for s in compute:
        rec = per_proc.setdefault(
            s.proc, {"busy": 0.0, "wait": 0.0, "first": s.start, "last": s.end}
        )
        rec["busy"] += s.duration
        rec["first"] = min(rec["first"], s.start)
        rec["last"] = max(rec["last"], s.end)
    for s in waits:
        rec = per_proc.setdefault(
            s.proc, {"busy": 0.0, "wait": 0.0, "first": s.start, "last": s.end}
        )
        rec["wait"] += s.duration

    window = max(t_end - t0, 1e-12)
    workers = tuple(
        WorkerStat(
            proc=proc,
            busy=rec["busy"],
            wait=rec["wait"],
            first_compute=rec["first"],
            last_compute=rec["last"],
            utilization=rec["busy"] / window,
        )
        for proc, rec in sorted(per_proc.items())
    )
    fill_end = max(w.first_compute for w in workers)
    drain_start = max(fill_end, min(w.last_compute for w in workers))
    # The worker whose pipeline finishes last carries the critical path.
    last = max(workers, key=lambda w: w.last_compute)
    return PhaseReport(
        clock=trace.clock,
        t0=t0,
        t_end=t_end,
        fill_end=fill_end,
        drain_start=drain_start,
        workers=workers,
        critical_path_wait=last.wait,
    )


def _fmt(value: float, clock: str) -> str:
    return f"{value * 1e3:10.3f} ms" if clock == "wall" else f"{value:10.1f} u"


def format_phase_report(report: PhaseReport, title: str | None = None) -> str:
    """Render the phase split and per-worker table as text."""
    lines = []
    if title:
        lines.append(title)
    wall = max(report.wall, 1e-12)
    lines.append(
        f"traced window {_fmt(report.wall, report.clock).strip()} "
        f"({len(report.workers)} workers, clock={report.clock})"
    )
    for label, value in (
        ("fill", report.fill),
        ("steady", report.steady),
        ("drain", report.drain),
    ):
        lines.append(
            f"  {label:<7}{_fmt(value, report.clock)}  ({value / wall:6.1%})"
        )
    lines.append(
        f"  phase coverage {report.coverage:.1%} of wall time; "
        f"mean utilisation {report.utilization:.1%}; "
        f"critical-path wait {_fmt(report.critical_path_wait, report.clock).strip()}"
    )
    lines.append("  proc       busy        wait    util")
    for w in report.workers:
        lines.append(
            f"  P{w.proc:<4}{_fmt(w.busy, report.clock)}"
            f"{_fmt(w.wait, report.clock)}  {w.utilization:6.1%}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Measured vs Eq. (1) residuals
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ResidualRow:
    """One pipeline block: measured vs modelled stage cost."""

    block: int
    width: int
    n_spans: int
    measured_compute: float  # mean over stages, clock units
    predicted_compute: float
    measured_wait: float
    predicted_comm: float

    @property
    def residual(self) -> float:
        return self.measured_compute - self.predicted_compute

    @property
    def ratio(self) -> float:
        if self.predicted_compute <= 0:
            return float("inf")
        return self.measured_compute / self.predicted_compute


def _model_constants(trace: Trace) -> dict:
    """The α/β/m/unit block residuals need, with a trace-derived fallback."""
    model = dict(trace.meta.get("model", {}))
    if "unit_seconds" not in model:
        # Estimate seconds (or units) per element from the compute spans
        # themselves: the aggregate fit every residual is measured against.
        total = elements = 0.0
        for s in trace.worker_spans("compute"):
            total += s.duration
            elements += s.args.get("elements", 0)
        model["unit_seconds"] = total / elements if elements else 0.0
    model.setdefault("alpha", 0.0)
    model.setdefault("beta", 0.0)
    model.setdefault("m", trace.meta.get("boundary_rows", 1))
    return model


def residual_table(trace: Trace) -> list[ResidualRow]:
    """Per-block measured-vs-predicted stage costs (Section 4 model).

    Prediction per stage and block of width ``w``: compute ``(rows/p)·w``
    elements at ``unit`` each; one received token at ``(α + β·m·w)·unit``.
    ``meta["model"]`` supplies α, β, m and the unit (virtual traces use
    unit 1); without it the unit is fitted from the trace itself.
    """
    model = _model_constants(trace)
    meta = trace.meta
    rows = meta.get("rows", 0)
    n_procs = max(
        1,
        meta.get("pipeline_procs")
        or len(trace.procs())
        or meta.get("n_procs", 1),
    )
    unit = model["unit_seconds"]
    alpha, beta, m = model["alpha"], model["beta"], model["m"]

    by_block: dict[int, dict] = {}
    for s in trace.worker_spans("compute"):
        k = s.args.get("block")
        if k is None:
            continue
        rec = by_block.setdefault(
            k, {"compute": [], "wait": [], "width": 0}
        )
        rec["compute"].append(s.duration)
        rec["width"] = max(rec["width"], s.args.get("width", 0))
    for s in trace.worker_spans("comm"):
        k = s.args.get("block")
        if s.name != "recv_wait" or k is None:
            continue
        by_block.setdefault(k, {"compute": [], "wait": [], "width": 0})[
            "wait"
        ].append(s.duration)

    block_size = meta.get("block_size") or 0
    cols = meta.get("cols", 0)
    out: list[ResidualRow] = []
    for k in sorted(by_block):
        rec = by_block[k]
        width = rec["width"]
        if not width and block_size and cols:
            width = max(1, min(block_size, cols - k * block_size))
        mean_compute = (
            sum(rec["compute"]) / len(rec["compute"]) if rec["compute"] else 0.0
        )
        mean_wait = sum(rec["wait"]) / len(rec["wait"]) if rec["wait"] else 0.0
        stage_rows = rows / n_procs if rows else 0.0
        out.append(
            ResidualRow(
                block=k,
                width=width,
                n_spans=len(rec["compute"]),
                measured_compute=mean_compute,
                predicted_compute=stage_rows * width * unit,
                measured_wait=mean_wait,
                predicted_comm=(alpha + beta * m * width) * unit,
            )
        )
    return out


def format_residuals(trace: Trace, title: str | None = None) -> str:
    """Render the per-block residual table, plus the Eq. (1) summary."""
    rows = residual_table(trace)
    if not rows:
        raise ValueError("trace has no per-block compute spans")
    clock = trace.clock
    lines = []
    if title:
        lines.append(title)
    model = _model_constants(trace)
    lines.append(
        f"model: alpha={model['alpha']:.3g} beta={model['beta']:.3g} "
        f"m={model['m']} unit={model['unit_seconds']:.3g} "
        f"(clock={clock})"
    )
    summary = _eq1_summary(trace, model)
    if summary:
        lines.append(summary)
    lines.append(
        "  block width   measured_comp  predicted_comp   residual   ratio"
        "    measured_wait  predicted_comm"
    )
    for r in rows:
        lines.append(
            f"  {r.block:>5} {r.width:>5}  {_fmt(r.measured_compute, clock)}"
            f"  {_fmt(r.predicted_compute, clock)} {_fmt(r.residual, clock)}"
            f"  {r.ratio:6.2f}   {_fmt(r.measured_wait, clock)}"
            f"  {_fmt(r.predicted_comm, clock)}"
        )
    total_measured = sum(r.measured_compute + r.measured_wait for r in rows)
    total_predicted = sum(r.predicted_compute + r.predicted_comm for r in rows)
    lines.append(
        f"  per-stage totals: measured {_fmt(total_measured, clock).strip()}"
        f"  predicted {_fmt(total_predicted, clock).strip()}"
    )
    return "\n".join(lines)


def _eq1_summary(trace: Trace, model: dict) -> str | None:
    """Whole-run Eq. (1) line via :class:`repro.models.pipeline_model`."""
    meta = trace.meta
    rows, cols = meta.get("rows"), meta.get("cols")
    n_procs = (
        meta.get("pipeline_procs")
        or meta.get("n_procs")
        or len(trace.procs())
    )
    block = meta.get("block_size")
    if not (rows and cols and block and n_procs and n_procs >= 2):
        return None
    from repro.machine.params import MachineParams
    from repro.models.pipeline_model import model2

    params = MachineParams(
        name="traced", alpha=model["alpha"], beta=model["beta"]
    )
    pm = model2(params, rows, n_procs, boundary_rows=model["m"], cols=cols)
    unit = model["unit_seconds"]
    return (
        f"Eq.(1): b*={pm.optimal_block_size()} (ran b={block}); "
        f"predicted total at b: "
        f"{_fmt(pm.predicted_time(block) * unit, trace.clock).strip()}"
    )


# ---------------------------------------------------------------------------
# Serve traces: per-request latency breakdown
# ---------------------------------------------------------------------------


def is_serve_trace(trace: Trace) -> bool:
    """True for traces recorded by :mod:`repro.serve` (request spans)."""
    if trace.meta.get("backend") == "serve":
        return True
    return any(s.name == "serve_request" for s in trace.spans)


def format_serve_report(trace: Trace, title: str | None = None) -> str:
    """Render a serve trace: one row per request, batches summarised.

    The ``serve_request`` spans carry the request's end-to-end window and
    its queue/compute split in their args; ``serve_batch`` spans record
    each fused dispatch.  Together they answer the serving questions the
    phase report cannot: where did a request's latency go, and how well
    did the coalescing window pack the batches?
    """
    from repro.util.tables import Table

    requests = [s for s in trace.spans if s.name == "serve_request"]
    batches = [s for s in trace.spans if s.name == "serve_batch"]
    lines = []
    if title:
        lines.append(title)
    table = Table(
        title=f"serve requests ({len(requests)})",
        headers=["id", "kind", "status", "batch", "queue ms", "compute ms",
                 "e2e ms"],
    )
    e2e_ok = []
    statuses: dict[int, int] = {}
    for s in sorted(requests, key=lambda s: s.args.get("id", 0)):
        args = s.args
        status = int(args.get("status", 0))
        statuses[status] = statuses.get(status, 0) + 1
        e2e = s.duration * 1e3
        if status == 200:
            e2e_ok.append(e2e)
        table.add_row(
            args.get("id", "?"), args.get("kind", "?"), status,
            args.get("batch", 0), round(args.get("queue_ms", 0.0), 3),
            round(args.get("compute_ms", 0.0), 3), round(e2e, 3),
        )
    lines.append(table.render())
    from repro.serve.metrics import percentile

    if e2e_ok:
        lines.append(
            f"  completed {len(e2e_ok)}: p50 {percentile(e2e_ok, 50):.3f} ms, "
            f"p99 {percentile(e2e_ok, 99):.3f} ms"
        )
    shed = sum(n for code, n in statuses.items() if code != 200)
    if shed:
        detail = ", ".join(
            f"{n}x {code}" for code, n in sorted(statuses.items()) if code != 200
        )
        lines.append(f"  non-200: {detail}")
    if batches:
        items = [int(b.args.get("items", 0)) for b in batches]
        lines.append(
            f"  batches {len(batches)}: {sum(items)} requests fused, "
            f"mean size {sum(items) / len(batches):.2f}, largest {max(items)}"
        )
    return "\n".join(lines)
