"""Paper-scale assertions: the headline numbers at the paper's problem sizes.

These are the quantitative anchors of the reproduction (EXPERIMENTS.md
records the same values).  They take a few seconds, not minutes — the
simulator skips value computation and the cache simulator is vectorised.
"""

import pytest

from repro.experiments import fig5a_model_vs_sim, fig6_cache


class TestFig5aPaperScale:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5a_model_vs_sim.run()  # n=257, p=8, Cray T3E

    def test_model1_picks_39(self, result):
        assert result.model1_best_b == 39

    def test_model2_picks_23(self, result):
        assert result.model2_best_b == 23

    def test_b23_beats_b39_in_simulation(self, result):
        # "Model2 predicts b = 23, which is in fact better."
        assert result.sim_at(23) > result.sim_at(39)

    def test_simulated_optimum_near_model2(self, result):
        assert abs(result.simulated_best_b - 23) <= 5

    def test_model2_tracks(self, result):
        assert result.model2_tracks_better()


class TestFig6PaperScale:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6_cache.run()  # n=257

    def test_t3e_component_speedups_near_paper(self, result):
        # Paper: "the wavefront computations alone speed up by up to 8.5x".
        t3e = result.lookup("tomcatv", "Cray T3E")
        best = max(s.speedup for _, s in t3e.components)
        assert 6.0 < best < 10.0

    def test_t3e_tomcatv_whole_near_3x(self, result):
        # Paper: "resulting in an overall speedup of 3x for Tomcatv".
        whole = result.lookup("tomcatv", "Cray T3E").whole_program_speedup
        assert 2.3 < whole < 3.6

    def test_t3e_simple_whole_small(self, result):
        # Paper: "and 7% for SIMPLE" — ours lands in the tens of percent;
        # the shape constraint is that it is small, far below Tomcatv's.
        whole = result.lookup("simple", "Cray T3E").whole_program_speedup
        assert 1.02 < whole < 1.4

    def test_powerchallenge_more_modest(self, result):
        # Paper: "the speedups are more modest (up to 4x)" on the SGI.
        for benchmark in ("tomcatv", "simple"):
            pc = result.lookup(benchmark, "SGI PowerChallenge")
            best = max(s.speedup for _, s in pc.components)
            assert 1.0 <= best < 4.5
        t3e_best = max(
            s.speedup
            for _, s in result.lookup("tomcatv", "Cray T3E").components
        )
        pc_best = max(
            s.speedup
            for _, s in result.lookup("tomcatv", "SGI PowerChallenge").components
        )
        assert t3e_best > 2 * pc_best
