"""The simulated distributed machine: processors + network + virtual clock."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator

from repro.errors import MachineError
from repro.machine.comm import Endpoint, Network, ProcStats
from repro.machine.event import Simulator
from repro.machine.params import MachineParams


@dataclass(frozen=True)
class RunResult:
    """Outcome of one simulated run.

    ``total_time`` is the virtual completion time (all processors done), in
    element-compute units; per-processor accounting is in ``proc_stats``.
    """

    total_time: float
    params: MachineParams
    n_procs: int
    proc_stats: tuple[ProcStats, ...]
    total_messages: int
    total_elements: int

    def speedup_vs(self, reference_time: float) -> float:
        """Speedup of this run relative to a reference time."""
        if self.total_time <= 0:
            raise MachineError("run has non-positive total time")
        return reference_time / self.total_time

    @property
    def utilization(self) -> float:
        """Mean fraction of the makespan each processor spent busy."""
        if self.total_time <= 0:
            return 0.0
        busy = sum(s.busy_time for s in self.proc_stats)
        return busy / (self.total_time * self.n_procs)

    @property
    def compute_time(self) -> float:
        """Total compute time across processors."""
        return sum(s.compute_time for s in self.proc_stats)

    @property
    def comm_time(self) -> float:
        """Total communication time charged across processors."""
        return sum(s.comm_time for s in self.proc_stats)

    def __repr__(self) -> str:
        return (
            f"RunResult(t={self.total_time:.1f}, p={self.n_procs}, "
            f"msgs={self.total_messages}, util={self.utilization:.2f})"
        )


class Machine:
    """A fresh simulated machine for one run.

    >>> m = Machine(CRAY_T3E, n_procs=4)
    >>> def body(ep):
    ...     yield from ep.compute(100)
    >>> for rank in range(4):
    ...     m.spawn(body, rank)
    >>> result = m.run()
    """

    def __init__(
        self,
        params: MachineParams,
        n_procs: int,
        send_overhead: float = 0.0,
        wire_latency: float = 0.0,
        trace_activity: bool = False,
        tracer=None,
    ):
        self.params = params
        self.sim = Simulator()
        self.network = Network(
            self.sim,
            params,
            n_procs,
            send_overhead=send_overhead,
            wire_latency=wire_latency,
            trace_activity=trace_activity,
            tracer=tracer,
        )

    @property
    def n_procs(self) -> int:
        return self.network.n_procs

    def endpoint(self, rank: int) -> Endpoint:
        """The communication endpoint of processor ``rank``."""
        return self.network.endpoints[rank]

    def spawn(self, body: Callable[[Endpoint], Generator], rank: int) -> None:
        """Start ``body(endpoint)`` as processor ``rank``'s program."""
        self.sim.process(body(self.endpoint(rank)), name=f"proc{rank}")

    def run(self) -> RunResult:
        """Run to completion and collect the result."""
        total = self.sim.run()
        return RunResult(
            total_time=total,
            params=self.params,
            n_procs=self.n_procs,
            proc_stats=tuple(ep.stats for ep in self.network.endpoints),
            total_messages=self.network.total_messages,
            total_elements=self.network.total_elements,
        )
